// ShardedEngine — the scale-out serving layer above MethodEngine.
//
// One outsourced server cannot serve millions of users; a deployment runs
// N engines side by side — replicas of one network behind a balancing
// router, or region partitions behind an explicit placement map — and a
// front door routes every query to the shard that owns it. ShardedEngine
// is that front door: it owns N independent MethodEngine instances (each
// with its own ADS, proof cache and certificate), routes queries through a
// pluggable ShardRouter, fans batches across shards on the worker pool,
// and aggregates per-shard serving/cache statistics.
//
// Serving is zero-copy end to end: every answer is a shared_ptr to the
// bundle resident in the owning shard's proof cache (or a freshly
// assembled one when caching is off), so a cache hit never copies the
// wire bytes and the encode path writes straight from the shared bundle.
// Replicas of one network produce byte-identical answers regardless of
// which shard serves them (same graph, seed and keys build the same ADS),
// which is what lets tests and CI compare a 4-shard run against a
// single-engine run digest for digest.
#ifndef SPAUTH_CORE_SHARDED_ENGINE_H_
#define SPAUTH_CORE_SHARDED_ENGINE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <vector>

#include "core/engine.h"
#include "core/forest_certificate.h"
#include "core/shard_health.h"
#include "core/update_queue.h"

namespace spauth {

/// One fleet epoch's published forest: the signed certificate, one
/// root-to-leaf path per routing group, and their pre-encoded wire bytes
/// (the serving tier attaches paths per answer; encoding them once per
/// epoch keeps the per-answer cost at a memcpy). Immutable once published —
/// readers hold it by shared_ptr exactly like an EngineState snapshot.
struct FleetCertificate {
  ForestCertificate certificate;
  std::vector<ForestPath> paths;  // indexed by routing group
  std::vector<uint8_t> encoded_certificate;
  std::vector<std::vector<uint8_t>> encoded_paths;
};

/// Deterministic query → shard placement policy. Implementations must be
/// pure functions of the query (no internal state mutation): the same
/// query must land on the same shard for the whole lifetime of the
/// engine, or per-shard caches would cool and region routing would break.
class ShardRouter {
 public:
  virtual ~ShardRouter() = default;

  /// The shard in [0, num_shards) that owns `query`.
  virtual size_t Route(const Query& query, size_t num_shards) const = 0;

  virtual std::string_view name() const = 0;
};

/// Balancing policy for replicated shards: splitmix64(source) % N. Queries
/// are keyed by source only, so a client session pinned to one source node
/// keeps hitting one shard's hot cache.
class HashSourceRouter : public ShardRouter {
 public:
  size_t Route(const Query& query, size_t num_shards) const override;
  std::string_view name() const override { return "hash-source"; }
};

/// Placement policy for region partitions: an explicit source-node → shard
/// map (e.g. from a graph partitioner). Sources beyond the map fall back
/// to `fallback_shard`.
class ExplicitMapRouter : public ShardRouter {
 public:
  explicit ExplicitMapRouter(std::vector<uint32_t> shard_of_source,
                             uint32_t fallback_shard = 0)
      : shard_of_source_(std::move(shard_of_source)),
        fallback_shard_(fallback_shard) {}

  size_t Route(const Query& query, size_t num_shards) const override;
  std::string_view name() const override { return "explicit-map"; }

 private:
  std::vector<uint32_t> shard_of_source_;
  uint32_t fallback_shard_;
};

/// One shard's build recipe: the graph it serves (a region partition or a
/// replica of the full network; must outlive the engine) and its engine
/// options. All specs in one ShardedEngine must agree on the method.
struct ShardSpec {
  const Graph* graph = nullptr;
  EngineOptions options;
};

/// Failover policy for replicated groups. The defaults reproduce the
/// pre-failover engine exactly: one replica per group, one attempt, no
/// deadline, no breakers.
struct FailoverOptions {
  /// Engines per routing group. The flat shard list is laid out
  /// group-major: engine index = group * replicas_per_group + replica.
  size_t replicas_per_group = 1;
  /// Total attempts per query (first try + retries across replicas).
  size_t max_attempts = 1;
  /// First retry's backoff; 0 retries immediately. Each further retry
  /// multiplies by backoff_multiplier, plus up to 50% deterministic
  /// jitter drawn from a Rng seeded by (jitter_seed, source, target,
  /// attempt) — replayable, never wall-clock or random_device.
  uint64_t backoff_base_us = 0;
  double backoff_multiplier = 2.0;
  /// Hard ceiling on any single backoff sleep. Without it, deadline_us == 0
  /// plus a large multiplier grows backoff_us without bound and the cast to
  /// the sleep's integral microseconds overflows (UB). Clamping the growth
  /// keeps unbounded-deadline retry loops sane; 0 is normalized to 1s.
  uint64_t max_backoff_us = 1'000'000;
  /// Per-query wall budget across ALL attempts and backoffs; 0 = none.
  /// Queries that exhaust it return kDeadlineExceeded.
  uint64_t deadline_us = 0;
  uint64_t jitter_seed = 1;
  /// When true each engine gets a ShardHealth breaker: retryable failures
  /// trip it, the attempt loop skips open replicas and probes half-open
  /// ones.
  bool enable_breakers = false;
  CircuitBreakerOptions breaker;
  /// When true, a query whose routed group has every replica
  /// breaker-denied spills over to the next group's replicas instead of
  /// failing outright. Only sound on replicated fleets (every group
  /// serves the same network); never enable it on region partitions,
  /// where another group serves a different graph.
  bool cross_group_failover = false;
};

/// One shard's serving counters plus its proof-cache counters.
struct ShardStats {
  uint64_t queries = 0;         // answers routed to this shard
  uint64_t failures = 0;        // answers that returned an error Status
  uint64_t answer_micros = 0;   // total wall time spent answering
  uint64_t updates = 0;         // edge updates absorbed (rotations may batch)
  uint64_t structural_updates = 0;  // structural ops absorbed (batched alike)
  uint64_t update_failures = 0; // update calls that returned an error Status
  uint64_t rotation_clone_bytes = 0;  // CoW bytes rotations actually copied
  // Coalescing-queue books (zero unless EnableUpdateQueues). Booked on the
  // queue's preferred engine: the group's first replica (engine 0 for a
  // fleet-lock-step queue), so summing shards still conserves.
  uint64_t enqueued_updates = 0;    // ops accepted into this engine's queue
  uint64_t coalesced_rotations = 0; // rotations queue flushes performed
  // GAUGES — point-in-time or high-water readings, not event counts.
  // Totals report each gauge as the max across shards: summing a gauge
  // over shards would fabricate a number no shard ever observed.
  uint64_t update_lag_micros = 0;  // worst queue staleness at flush (gauge)
  size_t live_snapshots = 0;    // published + retired-but-undrained (gauge)
  uint32_t certificate_version = 0;  // current signed version (gauge)
  // Failover-plane counters. A query is counted (queries/failures) exactly
  // once, on the engine that served it or was attempted last; retries /
  // failovers / breaker_skips accrue on the engines involved.
  uint64_t retries = 0;            // extra attempts after a retryable error
  uint64_t failovers = 0;          // queries served OK on a non-first attempt
  // Queries that ran out of budget. Booked on the routed group's preferred
  // replica — the engine the query belongs to — never on a spill-target
  // engine in another group (which may not even have attempted it).
  uint64_t deadline_exceeded = 0;
  uint64_t breaker_skips = 0;      // attempts denied by this engine's breaker
  uint64_t breaker_opens = 0;      // times this engine's breaker tripped
  // Gauge; totals carry the most severe state any shard reports (open >
  // half-open > closed) — "is anything tripped" at a glance.
  BreakerState breaker_state = BreakerState::kClosed;
  // Heal-plane counters (owner-side replica resync, see HealGroup).
  uint64_t resyncs = 0;          // times this replica adopted a sibling's state
  uint64_t resync_failures = 0;  // heal attempts on this replica that failed
  uint64_t cross_group_serves = 0;  // OK answers served here for another group
  // Times this engine was rolled forward across groups after a partial
  // fleet rotation (ApplyEdgeWeightUpdatesAllShards' self-repair).
  uint64_t fleet_rollforwards = 0;
  ProofCacheStats cache;
};

/// Per-shard stats plus their aggregate, from one consistent pass over the
/// shards. Counters sum; gauges (certificate_version, live_snapshots,
/// update_lag_micros, breaker_state) aggregate as the max — or most severe —
/// across shards, never as a sum.
struct ShardedStats {
  std::vector<ShardStats> shards;
  ShardStats totals;
};

class ShardedEngine {
 public:
  /// Builds one MethodEngine per spec (timed per shard, like MakeEngine)
  /// behind `router` (HashSourceRouter when null). InvalidArgument on an
  /// empty spec list, a null graph, specs that mix methods, or a failover
  /// policy whose replicas_per_group does not divide the spec count. The
  /// spec list is group-major: specs [g*R, (g+1)*R) are group g's replicas
  /// and must serve identical graphs/options for failover transparency.
  static Result<std::unique_ptr<ShardedEngine>> Build(
      std::span<const ShardSpec> specs, std::unique_ptr<ShardRouter> router,
      const RsaKeyPair& keys, const FailoverOptions& failover = {});

  /// `num_shards` replicas of one network: every shard builds the same ADS
  /// from the same options and keys, so any shard's answer is
  /// byte-identical to any other's (and to a standalone MakeEngine's).
  static Result<std::unique_ptr<ShardedEngine>> BuildReplicated(
      const Graph& g, const EngineOptions& options, size_t num_shards,
      const RsaKeyPair& keys, std::unique_ptr<ShardRouter> router = nullptr);

  /// `num_groups` routing groups of failover.replicas_per_group replicas
  /// each, all serving the same network. The router balances across
  /// groups; within a group the failover policy picks and retries
  /// replicas.
  static Result<std::unique_ptr<ShardedEngine>> BuildReplicated(
      const Graph& g, const EngineOptions& options, size_t num_groups,
      const RsaKeyPair& keys, const FailoverOptions& failover,
      std::unique_ptr<ShardRouter> router = nullptr);

  size_t num_shards() const { return shards_.size(); }
  /// Routing groups (== num_shards unless replicas_per_group > 1).
  size_t num_groups() const { return num_groups_; }
  size_t replicas_per_group() const { return failover_.replicas_per_group; }
  const FailoverOptions& failover_options() const { return failover_; }
  const MethodEngine& shard(size_t i) const { return *shards_[i]; }
  /// Owner-side access for direct per-shard maintenance.
  MethodEngine& shard(size_t i) { return *shards_[i]; }
  const ShardRouter& router() const { return *router_; }

  /// The routing group `query` routes to (deterministic). With one
  /// replica per group this is the serving shard index; with more, the
  /// failover policy picks the replica inside the group per attempt.
  size_t RouteOf(const Query& query) const {
    return router_->Route(query, num_groups_);
  }

  /// The group an update to edge (u, v) routes to: the same placement as a
  /// query sourced at `u` targeting `v`, so in a region deployment the
  /// shard that serves a source also absorbs its updates.
  size_t RouteOfUpdate(const EdgeWeightUpdate& update) const {
    return router_->Route(Query{update.u, update.v}, num_groups_);
  }

  /// Owner-side live batch update on one routing group: absorbs the whole
  /// batch into ONE snapshot rotation per replica (one structural clone,
  /// one signature at version + k each, applied lock-step in replica
  /// order) while the group's traffic keeps serving (see
  /// MethodEngine::ApplyEdgeWeightUpdates). Returns the group's new
  /// certificate version; InvalidArgument for an out-of-range group. On a
  /// failed replica the error returns immediately and later replicas stay
  /// on the old version — a real mid-rotation fault, which bounded-
  /// staleness clients (Client::SetStalenessBound) are built to ride out.
  /// Before rotating, any replica left lagging by an earlier torn
  /// rotation is first healed from its most advanced sibling (HealGroup),
  /// so the lock-step invariant self-repairs instead of compounding.
  Result<uint32_t> ApplyEdgeWeightUpdates(
      size_t group, const RsaKeyPair& keys,
      std::span<const EdgeWeightUpdate> updates);

  /// Single-update wrapper: a batch of one.
  Result<uint32_t> ApplyEdgeWeightUpdate(size_t group, const RsaKeyPair& keys,
                                         NodeId u, NodeId v,
                                         double new_weight);

  /// Owner-side heal of one routing group: any replica whose certificate
  /// version lags the group's most advanced sibling (the signature a torn
  /// rotation leaves behind) adopts that sibling's live snapshot via
  /// MethodEngine::AdoptStateFrom — a pointer-shared install, no rebuild,
  /// no re-sign, no waiting for the next full rotation. Serving continues
  /// throughout (the install is one epoch publish). Returns the number of
  /// replicas healed (0 when the group is already in lock-step); the
  /// first failed resync aborts with its (retryable) error. Fail point
  /// "replica/resync" fails the install (arg = engine index).
  /// ApplyEdgeWeightUpdates calls this before every rotation so a torn
  /// group converges instead of diverging batch by batch.
  Result<size_t> HealGroup(size_t group);

  /// HealGroup over every group; returns the total replicas healed.
  Result<size_t> Heal();

  /// Replicated deployments: absorbs the batch on *every* shard (one
  /// rotation each) so the replicas stay byte-transparent, and returns the
  /// common new version. A failed group no longer aborts the walk: every
  /// group is attempted, and on a replicated fleet any group the rotation
  /// left behind is rolled FORWARD to the most advanced group's snapshot
  /// (cross-group AdoptStateFrom) before the first error returns — the
  /// fleet is in lock-step either way, the caller just learns the batch
  /// needed repair. Roll-forwards are booked per engine in
  /// ShardStats::fleet_rollforwards (and resyncs). Under forest mode the
  /// fleet signs ONE forest certificate for the whole rotation, after the
  /// roll-forward, so the published epoch always covers a uniform fleet.
  Result<uint32_t> ApplyEdgeWeightUpdatesAllShards(
      const RsaKeyPair& keys, std::span<const EdgeWeightUpdate> updates);

  /// Single-update wrapper over the batched all-shards form.
  Result<uint32_t> ApplyEdgeWeightUpdateAllShards(const RsaKeyPair& keys,
                                                  NodeId u, NodeId v,
                                                  double new_weight);

  /// Structural twin of ApplyEdgeWeightUpdates (group form): absorbs the
  /// op batch into ONE structural rotation per replica (lock-step, one
  /// signature at version + k each — see MethodEngine::
  /// ApplyStructuralUpdates), healing laggards first, publishing the next
  /// forest epoch in forest mode. DIJ fleets only; FULL/LDM/HYP shards
  /// return FailedPrecondition.
  Result<uint32_t> ApplyStructuralUpdates(size_t group, const RsaKeyPair& keys,
                                          std::span<const StructuralUpdate> ops);

  /// Single-op wrapper: a batch of one.
  Result<uint32_t> ApplyStructuralUpdate(size_t group, const RsaKeyPair& keys,
                                         const StructuralUpdate& op);

  /// Structural twin of ApplyEdgeWeightUpdatesAllShards: every group
  /// absorbs the batch (every group attempted even after a failure, then
  /// the replicated-fleet roll-forward repair, then one forest publish).
  Result<uint32_t> ApplyStructuralUpdatesAllShards(
      const RsaKeyPair& keys, std::span<const StructuralUpdate> ops);

  /// Installs a coalescing UpdateQueue (core/update_queue.h) in front of
  /// the rotation paths. Per-group mode (fleet_lock_step == false): one
  /// queue per routing group, a flush rotates that group only — the
  /// region-partition shape, matching ApplyUpdateStream's placement.
  /// Fleet-lock-step mode: ONE queue for the whole fleet, a flush drives
  /// the AllShards rotations so replicas stay byte-transparent; requires a
  /// replicated fleet (on region partitions a fleet-wide batch would apply
  /// every region's ops to every region). Call once, before enqueuing;
  /// FailedPrecondition on a second call.
  Status EnableUpdateQueues(const UpdateQueueOptions& options,
                            bool fleet_lock_step = false);

  bool update_queues_enabled() const { return !queues_.empty(); }
  /// Queues installed: num_groups(), or 1 in fleet-lock-step mode.
  size_t num_update_queues() const { return queues_.size(); }

  /// Buffers one op into queue `queue` (a group index; 0 in fleet mode)
  /// and flushes immediately if a trigger fired — the returned bool says
  /// whether a flush ran. `now_micros` is the caller's clock (synthetic in
  /// tests/benchmarks); it feeds the staleness trigger and the lag gauge.
  Result<bool> EnqueueWeightUpdate(size_t queue, const RsaKeyPair& keys,
                                   const EdgeWeightUpdate& update,
                                   uint64_t now_micros);
  Result<bool> EnqueueStructuralUpdate(size_t queue, const RsaKeyPair& keys,
                                       const StructuralUpdate& op,
                                       uint64_t now_micros);

  /// Staleness sweep: flushes every queue whose trigger fired (the owner's
  /// timer tick). Returns the number of ops drained.
  Result<size_t> PollUpdateQueues(const RsaKeyPair& keys, uint64_t now_micros);

  /// Unconditional flush of every queue (owner shutdown / barrier).
  /// Returns the number of ops drained.
  Result<size_t> DrainUpdateQueues(const RsaKeyPair& keys,
                                   uint64_t now_micros);

  /// The queue's own books (enqueued/rotations/lag); zero-value stats for
  /// an out-of-range index or when queues are disabled.
  UpdateQueueStats update_queue_stats(size_t queue) const;

  /// Routes an owner update stream through the query router (one rotation
  /// per update on the owning shard). The result vector is parallel to
  /// `updates`; per-update failures surface without aborting the stream.
  std::vector<Result<uint32_t>> ApplyUpdateStream(
      std::span<const EdgeWeightUpdate> updates, const RsaKeyPair& keys);

  /// Routes and answers one query on the owning shard's zero-copy path.
  /// The workspace form reuses the caller's scratch (workspaces resize per
  /// shard graph, so one workspace serves a mixed-shard stream); the plain
  /// form wraps it with a throwaway one.
  Result<std::shared_ptr<const ProofBundle>> Answer(const Query& query) const;
  Result<std::shared_ptr<const ProofBundle>> Answer(const Query& query,
                                                    SearchWorkspace& ws) const;

  /// Fans a query stream across shards on the worker pool (one hot
  /// SearchWorkspace per worker, num_threads == 0 picks a host default).
  /// The result vector is parallel to `queries`; per-query failures
  /// surface as error Results without aborting the batch.
  std::vector<Result<std::shared_ptr<const ProofBundle>>> AnswerBatch(
      std::span<const Query> queries, size_t num_threads = 0) const;

  /// Per-shard and aggregate serving/cache counters.
  ShardedStats GetStats() const;

  /// Switches the fleet to forest certificates: from now on per-shard
  /// rotations defer their RSA signature and every rotation (group or
  /// fleet-wide) publishes ONE signed forest certificate over all group
  /// certificate digests — fleet epoch + 1 per publish, one signature per
  /// rotation regardless of fleet size. Publishes the first forest (epoch
  /// 1, one signature) immediately; the groups must be in lock-step, so
  /// replicated fleets are healed first. Requires fanout >= 2; call once,
  /// before serving answers that clients verify through the forest.
  Status EnableForestCertificates(const RsaKeyPair& keys,
                                  uint32_t forest_fanout = 2);

  bool forest_enabled() const { return forest_enabled_; }
  /// The current fleet epoch (0 until EnableForestCertificates).
  uint32_t fleet_epoch() const {
    return fleet_epoch_.load(std::memory_order_acquire);
  }
  /// The current epoch's forest publication (nullptr before forest mode).
  /// Immutable; safe to hold across rotations like an EngineState.
  std::shared_ptr<const FleetCertificate> forest() const;

  /// Rolls every engine that lags the fleet's most advanced certificate
  /// version forward by adopting that snapshot (cross-group on replicated
  /// fleets). Books ShardStats::fleet_rollforwards per engine healed and
  /// returns the count. This is the repair ApplyEdgeWeightUpdatesAllShards
  /// runs after a partial failure; exposed for owner tooling and tests.
  /// FailedPrecondition on region fleets (another group's snapshot serves
  /// a different graph — adoption would be unsound).
  Result<size_t> RollFleetForward();

 private:
  // Serving counters are per-shard atomics so AnswerBatch workers never
  // contend on a shared lock; cache counters live in each shard's cache.
  // Time accumulates in nanoseconds: cache hits finish well under a
  // microsecond, and truncating each one to micros would count the whole
  // hit path as free. GetStats converts once.
  struct Counters {
    std::atomic<uint64_t> queries{0};
    std::atomic<uint64_t> failures{0};
    std::atomic<uint64_t> answer_nanos{0};
    std::atomic<uint64_t> updates{0};
    std::atomic<uint64_t> structural_updates{0};
    std::atomic<uint64_t> update_failures{0};
    std::atomic<uint64_t> enqueued_updates{0};
    std::atomic<uint64_t> coalesced_rotations{0};
    std::atomic<uint64_t> update_lag_micros{0};  // high-water gauge
    std::atomic<uint64_t> retries{0};
    std::atomic<uint64_t> failovers{0};
    std::atomic<uint64_t> deadline_exceeded{0};
    std::atomic<uint64_t> breaker_skips{0};
    std::atomic<uint64_t> resyncs{0};
    std::atomic<uint64_t> resync_failures{0};
    std::atomic<uint64_t> cross_group_serves{0};
    std::atomic<uint64_t> fleet_rollforwards{0};
  };

  ShardedEngine(std::vector<std::unique_ptr<MethodEngine>> shards,
                std::unique_ptr<ShardRouter> router, FailoverOptions failover);

  /// Routes, times and serves one query, retrying across the routed
  /// group's replicas per the failover policy. `snaps` (one slot per
  /// engine, empty to opt out) lets a batch worker keep pinned snapshots
  /// so the steady-state read path is a single epoch load per query
  /// instead of a slot acquire; Answer() passes empty.
  Result<std::shared_ptr<const ProofBundle>> AnswerPinned(
      const Query& query, SearchWorkspace& ws,
      std::span<std::shared_ptr<const EngineState>> snaps) const;

  /// One serving attempt on `engine`; feeds the engine's breaker.
  Result<std::shared_ptr<const ProofBundle>> AttemptOnEngine(
      size_t engine, const Query& query, SearchWorkspace& ws,
      std::span<std::shared_ptr<const EngineState>> snaps) const;

  /// One group's rotation WITHOUT the forest publish (the callers decide
  /// whether the publish covers one group or the whole fleet). In forest
  /// mode the per-replica rotations are defer-signed.
  Result<uint32_t> RotateGroup(size_t group, const RsaKeyPair& keys,
                               std::span<const EdgeWeightUpdate> updates);

  /// Structural twin of RotateGroup (heals, then lock-step structural
  /// rotations, defer-signed in forest mode).
  Result<uint32_t> RotateGroupStructural(size_t group, const RsaKeyPair& keys,
                                         std::span<const StructuralUpdate> ops);

  /// One queue's flush under its mutex: drains same-kind runs into the
  /// group (or AllShards) rotation paths and books the queue counters on
  /// the preferred engine. Returns the number of ops drained.
  Result<size_t> FlushQueue(size_t queue, const RsaKeyPair& keys,
                            uint64_t now_micros);

  /// Builds and atomically publishes the next fleet epoch's forest over
  /// the groups' current certificate digests. Exactly one RSA signature.
  Status PublishForest(const RsaKeyPair& keys);

  // One installed coalescing queue (EnableUpdateQueues). The mutex guards
  // the queue itself; the rotations a flush performs take the engines'
  // own update locks as usual.
  struct OwnerQueue {
    explicit OwnerQueue(const UpdateQueueOptions& options) : queue(options) {}
    std::mutex mu;
    UpdateQueue queue;
  };

  std::vector<std::unique_ptr<MethodEngine>> shards_;
  std::unique_ptr<ShardRouter> router_;
  FailoverOptions failover_;
  size_t num_groups_ = 0;
  mutable std::unique_ptr<Counters[]> counters_;
  // One breaker per engine (empty unless failover_.enable_breakers).
  std::vector<std::unique_ptr<ShardHealth>> health_;
  // True when every shard serves the same graph (Build saw one graph
  // pointer) — the precondition for cross-group adoption.
  bool replicated_fleet_ = false;
  // Forest-certificate state. forest_mu_ guards the publication swap;
  // readers copy the shared_ptr under the same lock (uncontended in
  // steady state — one acquire per answer encode, one swap per rotation).
  bool forest_enabled_ = false;
  uint32_t forest_fanout_ = 2;
  std::atomic<uint32_t> fleet_epoch_{0};
  mutable std::mutex forest_mu_;
  std::shared_ptr<const FleetCertificate> fleet_;
  // Coalescing queues (empty until EnableUpdateQueues): one per group, or
  // one fleet-wide in lock-step mode.
  std::vector<std::unique_ptr<OwnerQueue>> queues_;
  bool queues_fleet_lock_step_ = false;
};

/// Post-recovery fleet repair (the durability seam of forest mode): rolls
/// every engine below the set's most advanced certificate version forward
/// by adopting that engine's snapshot. A crash mid-fleet-rotation recovers
/// shards into MIXED epochs — each verifies standalone, but a forest built
/// over them would certify a fleet that never existed; reconciling first
/// makes the next forest publish cover one uniform epoch. All engines must
/// serve the same replicated network (AdoptStateFrom enforces it). Returns
/// the number of engines rolled forward.
Result<size_t> ReconcileFleetEpoch(std::span<MethodEngine* const> engines);

}  // namespace spauth

#endif  // SPAUTH_CORE_SHARDED_ENGINE_H_
