// The provider's choice of shortest path algorithm (Algorithm 1, line 1:
// "applies the shortest path algorithm algosp of its choice").
//
// The proof machinery is agnostic to how the provider computed the path —
// any exact algorithm yields the same distance and therefore the same
// verification outcome. spauth ships three exact options; A* with the
// Euclidean bound is only admissible when edge weights dominate Euclidean
// lengths (true for GenerateRoadNetwork outputs), so it is opt-in.
#ifndef SPAUTH_CORE_ALGOSP_H_
#define SPAUTH_CORE_ALGOSP_H_

#include <string_view>

#include "graph/dijkstra.h"
#include "graph/graph.h"

namespace spauth {

enum class SpAlgorithm : uint8_t {
  kDijkstra = 0,       // default
  kBidirectional = 1,  // bidirectional Dijkstra
  kAStarEuclidean = 2, // A* with the Euclidean lower bound (requires
                       // weights >= Euclidean distance)
};

std::string_view ToString(SpAlgorithm algo);

/// Runs the chosen algorithm from `source` to `target` on `g`.
PathSearchResult RunShortestPath(const Graph& g, NodeId source, NodeId target,
                                 SpAlgorithm algo);
/// Workspace form for the query-serving fast path.
PathSearchResult RunShortestPath(const Graph& g, NodeId source, NodeId target,
                                 SpAlgorithm algo, SearchWorkspace& ws);

}  // namespace spauth

#endif  // SPAUTH_CORE_ALGOSP_H_
