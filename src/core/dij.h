// DIJ — Dijkstra subgraph verification (Section IV-A).
//
// No pre-computation: the owner only builds the network Merkle tree. The
// provider answers a query with the shortest path plus the subgraph proof
// of Lemma 1 — the extended-tuples of every node within dist(vs, vt) of vs.
// The client re-runs Dijkstra over the tuples and accepts iff the subgraph
// is complete and its shortest distance equals the reported path length.
#ifndef SPAUTH_CORE_DIJ_H_
#define SPAUTH_CORE_DIJ_H_

#include "core/algosp.h"
#include "core/certificate.h"
#include "core/network_ads.h"
#include "core/verify_outcome.h"
#include "graph/dijkstra.h"
#include "graph/workload.h"

namespace spauth {

struct VerifyWorkspace;  // core/verify_workspace.h

struct DijOptions {
  NodeOrdering ordering = NodeOrdering::kHilbert;
  uint32_t fanout = 2;
  HashAlgorithm alg = HashAlgorithm::kSha1;
  uint64_t seed = 1;  // used only by the random ordering
};

/// Owner-side state: the network ADS and the signed certificate.
struct DijAds {
  NetworkAds network;
  Certificate certificate;
};

Result<DijAds> BuildDijAds(const Graph& g, const DijOptions& options,
                           const RsaKeyPair& keys);

/// What the provider ships back for one query.
struct DijAnswer {
  Path path;
  double distance = 0;
  TupleSetProof subgraph;  // Gamma_S tuples + Gamma_T digests

  void Serialize(ByteWriter* out) const;
  static Result<DijAnswer> Deserialize(ByteReader* in);
  /// Decodes into `out`, reusing its vector capacity (the client fast
  /// path); Deserialize is a thin wrapper.
  static Status DeserializeInto(ByteReader* in, DijAnswer* out);
  /// Exact wire size of Serialize(); used to pre-size bundle buffers.
  size_t SerializedSize() const {
    return 4 + path.nodes.size() * 4 + 8 + subgraph.SerializedSize();
  }
};

/// Provider role: holds the graph and the owner's ADS.
class DijProvider {
 public:
  explicit DijProvider(const Graph* g, const DijAds* ads,
      SpAlgorithm algosp = SpAlgorithm::kDijkstra)
      : g_(g), ads_(ads), algosp_(algosp) {}

  Result<DijAnswer> Answer(const Query& query) const;
  /// Fast path: reuses `ws` across queries (one workspace per thread).
  Result<DijAnswer> Answer(const Query& query, SearchWorkspace& ws) const;

 private:
  const Graph* g_;
  const DijAds* ads_;
  SpAlgorithm algosp_;
};

/// Client role: needs only the owner's public key and the certificate.
VerifyOutcome VerifyDijAnswer(const RsaPublicKey& owner_key,
                              const Certificate& cert, const Query& query,
                              const DijAnswer& answer);

/// Fast path: all verification scratch (Merkle replay, tuple index,
/// re-search) lives in `ws`, reused across answers. The plain overload is
/// a thin wrapper, so outcomes are identical by construction. `answer` may
/// alias `ws`'s decode scratch.
VerifyOutcome VerifyDijAnswer(const RsaPublicKey& owner_key,
                              const Certificate& cert, const Query& query,
                              const DijAnswer& answer, VerifyWorkspace& ws);

}  // namespace spauth

#endif  // SPAUTH_CORE_DIJ_H_
