// EngineState — the immutable published snapshot behind live-update serving.
//
// A MethodEngine no longer mutates its graph/ADS/certificate in place.
// Everything one query needs is bundled into an EngineState: the graph the
// snapshot serves, the method ADS (held by the per-method derived state),
// the signed certificate over that ADS, and the snapshot's private proof
// cache. Readers acquire the current snapshot with one atomic
// shared_ptr load per query and serve entirely from it; owners build a new
// snapshot off to the side (copy-on-write: clone the tuples, incrementally
// re-hash the touched Merkle leaves, re-sign at version + 1) and publish it
// with release semantics. A retired snapshot stays alive until the last
// in-flight query that acquired it finishes — there is no locking anywhere
// on the read path and no quiesce anywhere on the write path.
//
// Snapshots are structurally shared, not deep copies: graph adjacency
// blocks, ADS tuple chunks and Merkle level chunks live behind shared_ptr,
// and a rotation's "clone" copies only the pointer spines plus the chunks
// the update actually rewrites (O(f log_f V) bytes, reported as
// rotation_clone_bytes). A retired snapshot therefore *aliases* chunks of
// the live one; that is safe because a shared chunk is never written in
// place — writers copy-on-write any chunk whose use_count shows another
// owner. Drain accounting is unchanged: the retire hook runs when the last
// snapshot handle drops, regardless of how many chunks the snapshot still
// shares with its successors.
//
// Lifetime rules:
//  - A snapshot never changes after publish — the cache pointer included
//    (it is attached by PublishState before the snapshot becomes visible).
//    The cache *object* is internally thread-safe; the snapshot only ever
//    hands out the same pointer.
//  - Snapshot handles must not outlive their engine: the engine's retire
//    hook (cache-stat folding, drain accounting) runs when the last handle
//    drops. ProofBundles are independently owned and may outlive both.
#ifndef SPAUTH_CORE_ENGINE_STATE_H_
#define SPAUTH_CORE_ENGINE_STATE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>

#include "core/certificate.h"
#include "graph/graph.h"
#include "util/proof_cache.h"

namespace spauth {

struct ProofBundle;  // core/engine.h

struct EngineState {
  /// Monotone snapshot counter, assigned at publish (initial build = 1).
  uint64_t epoch = 0;

  /// The graph this snapshot serves. The initial snapshot aliases the
  /// caller's graph (non-owning); snapshots produced by updates own their
  /// copy-on-write clone.
  std::shared_ptr<const Graph> graph;

  /// The signed certificate for this snapshot's ADS roots. Derived states
  /// keep the same certificate inside their method ADS; this mirror lets
  /// the base serving/update plumbing read it without downcasting.
  Certificate certificate;
  /// Cached wire size of `certificate` (pre-sizes bundle buffers).
  size_t cert_size = 0;

  /// The snapshot's private proof cache (null when caching is disabled),
  /// attached at publish and never reassigned. Every rotation starts a
  /// fresh cache — a cached bundle certifies this snapshot's root, so
  /// retiring the snapshot retires the cache wholesale.
  std::shared_ptr<ProofCache<ProofBundle>> cache;

  virtual ~EngineState() = default;
};

/// A non-owning shared_ptr view of a caller-owned graph, for the initial
/// snapshot (the caller's graph must outlive the engine, as before).
inline std::shared_ptr<const Graph> UnownedGraph(const Graph& g) {
  return std::shared_ptr<const Graph>(&g, [](const Graph*) {});
}

/// The published-snapshot slot readers acquire from and writers rotate.
///
/// Not std::atomic<std::shared_ptr>: libstdc++'s _Sp_atomic unlocks its
/// internal lock bit with relaxed ordering (the mutual exclusion is real,
/// but there is no release/acquire edge over the pointer field), which
/// ThreadSanitizer rightly reports — and this subsystem's test campaign
/// runs under TSan. This slot uses a two-instruction spinlock with proper
/// acquire/release pairing (TSan-clean by construction) plus a monotone
/// published-epoch signal: a hot reader (the Refresh fast path the batch
/// loops use) revalidates its cached snapshot with a single acquire load
/// and touches neither the lock nor any refcount until a rotation
/// actually happens — cheaper per query than atomic<shared_ptr>'s two
/// RMWs. Acquire() itself does take the spinlock for one pointer copy
/// (so single-query callers pay it, like they would with
/// atomic<shared_ptr>'s internal lock bit); only the epoch-revalidated
/// path is lock-free.
class EngineStateSlot {
 public:
  EngineStateSlot() = default;
  EngineStateSlot(const EngineStateSlot&) = delete;
  EngineStateSlot& operator=(const EngineStateSlot&) = delete;

  /// A pinned reference to the published snapshot (never null once the
  /// engine constructor published the initial state).
  std::shared_ptr<const EngineState> Acquire() const {
    Lock();
    std::shared_ptr<const EngineState> copy = state_;
    Unlock();
    return copy;
  }

  /// The serving fast path: keeps `cached` pinned to the published
  /// snapshot, re-acquiring only when the published epoch moved — one
  /// acquire load per call in the steady state. A reader may serve one
  /// query from the outgoing snapshot while a rotation is mid-publish;
  /// that is indistinguishable from the query having arrived a moment
  /// earlier, which is the snapshot model's whole point.
  void Refresh(std::shared_ptr<const EngineState>* cached) const {
    const uint64_t published = epoch_.load(std::memory_order_acquire);
    if (*cached == nullptr || (*cached)->epoch != published) {
      *cached = Acquire();
    }
  }

  /// Publishes `state` (callers serialize rotations; the engine's update
  /// mutex does) and releases the previous snapshot outside the critical
  /// section, so a drain hook never runs under the slot lock.
  void Store(std::shared_ptr<const EngineState> state) {
    const uint64_t epoch = state->epoch;
    Lock();
    state_.swap(state);
    Unlock();
    epoch_.store(epoch, std::memory_order_release);
  }

  /// The published snapshot's epoch (readers poll this to notice
  /// rotations without pinning anything).
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

 private:
  void Lock() const {
    while (lock_.exchange(1, std::memory_order_acquire) != 0) {
      // The holder is copying one shared_ptr; on an oversubscribed core,
      // yielding beats burning the rest of the quantum.
      std::this_thread::yield();
    }
  }
  void Unlock() const { lock_.store(0, std::memory_order_release); }

  mutable std::atomic<uint32_t> lock_{0};
  std::shared_ptr<const EngineState> state_;
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace spauth

#endif  // SPAUTH_CORE_ENGINE_STATE_H_
