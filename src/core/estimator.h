// Proof-size estimation — the paper's stated future work ("a promising
// future direction is to develop a model for estimating the proof size for
// shortest path veriﬁcation", Section VII).
//
// Model: for each method, the mean proof size as a function of the query
// range r is captured by a power law, fitted in log-log space
//     log(bytes) = log_a + slope_b * log(r)
// from a handful of cheap calibration queries. The intuition follows the
// paper's own observations: DIJ's proof tracks the Lemma-1 ball (area-like
// growth, slope ~1.5-2 on near-planar networks), LDM tracks the A*
// corridor (slope ~1), HYP's cells are range-independent but its fine path
// grows linearly (small slope), and FULL grows only with the path length
// (smallest slope).
//
// Use cases: the owner compares methods/parameters before committing to an
// ADS; a client budgets bandwidth before querying.
#ifndef SPAUTH_CORE_ESTIMATOR_H_
#define SPAUTH_CORE_ESTIMATOR_H_

#include <span>

#include "core/engine.h"
#include "util/status.h"

namespace spauth {

struct ProofSizeModel {
  MethodKind method = MethodKind::kDij;
  double log_a = 0;    // intercept in log-log space
  double slope_b = 0;  // power-law exponent
  /// Residual standard deviation of the fit in log space (quality signal;
  /// ~0.1 means typical +-10% multiplicative error on calibration points).
  double log_residual = 0;

  /// Predicted mean total proof bytes for a query of network distance
  /// `range`.
  double EstimateBytes(double range) const;
};

struct EstimatorOptions {
  /// Ranges to calibrate at; at least two distinct values required.
  std::vector<double> calibration_ranges = {500, 1000, 4000};
  /// Queries sampled per calibration range.
  size_t queries_per_range = 8;
  uint64_t seed = 13;
};

/// Fits the power-law model for `engine` by answering sampled queries on
/// `g` at the calibration ranges.
Result<ProofSizeModel> FitProofSizeModel(const MethodEngine& engine,
                                         const Graph& g,
                                         const EstimatorOptions& options);

}  // namespace spauth

#endif  // SPAUTH_CORE_ESTIMATOR_H_
