#include "core/sharded_engine.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "util/hash_mix.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace spauth {

size_t HashSourceRouter::Route(const Query& query, size_t num_shards) const {
  // Source ids are dense and correlated, so spread them before the modulo.
  const uint64_t h = SplitMix64Finalize(query.source);
  return num_shards == 0 ? 0 : h % num_shards;
}

size_t ExplicitMapRouter::Route(const Query& query,
                                size_t num_shards) const {
  if (num_shards == 0) {
    return 0;
  }
  const uint32_t shard = query.source < shard_of_source_.size()
                             ? shard_of_source_[query.source]
                             : fallback_shard_;
  return shard % num_shards;
}

ShardedEngine::ShardedEngine(std::vector<std::unique_ptr<MethodEngine>> shards,
                             std::unique_ptr<ShardRouter> router)
    : shards_(std::move(shards)),
      router_(std::move(router)),
      counters_(std::make_unique<Counters[]>(shards_.size())) {}

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::Build(
    std::span<const ShardSpec> specs, std::unique_ptr<ShardRouter> router,
    const RsaKeyPair& keys) {
  if (specs.empty()) {
    return Status::InvalidArgument("a sharded engine needs at least 1 shard");
  }
  std::vector<std::unique_ptr<MethodEngine>> shards;
  shards.reserve(specs.size());
  for (const ShardSpec& spec : specs) {
    if (spec.graph == nullptr) {
      return Status::InvalidArgument("shard spec has a null graph");
    }
    if (spec.options.method != specs.front().options.method) {
      return Status::InvalidArgument(
          "all shards of one engine must share the method");
    }
    SPAUTH_ASSIGN_OR_RETURN(std::unique_ptr<MethodEngine> engine,
                            MakeEngine(*spec.graph, spec.options, keys));
    shards.push_back(std::move(engine));
  }
  if (router == nullptr) {
    router = std::make_unique<HashSourceRouter>();
  }
  return std::unique_ptr<ShardedEngine>(
      new ShardedEngine(std::move(shards), std::move(router)));
}

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::BuildReplicated(
    const Graph& g, const EngineOptions& options, size_t num_shards,
    const RsaKeyPair& keys, std::unique_ptr<ShardRouter> router) {
  std::vector<ShardSpec> specs(std::max<size_t>(num_shards, 1),
                               ShardSpec{&g, options});
  return Build(specs, std::move(router), keys);
}

Result<std::shared_ptr<const ProofBundle>> ShardedEngine::Answer(
    const Query& query) const {
  SearchWorkspace ws;
  return Answer(query, ws);
}

Result<std::shared_ptr<const ProofBundle>> ShardedEngine::Answer(
    const Query& query, SearchWorkspace& ws) const {
  return AnswerPinned(query, ws, {});
}

Result<std::shared_ptr<const ProofBundle>> ShardedEngine::AnswerPinned(
    const Query& query, SearchWorkspace& ws,
    std::span<std::shared_ptr<const EngineState>> snaps) const {
  const size_t shard = RouteOf(query);
  Counters& counters = counters_[shard];
  WallTimer timer;
  Result<std::shared_ptr<const ProofBundle>> result =
      snaps.empty() ? shards_[shard]->AnswerShared(query, ws)
                    : shards_[shard]->AnswerShared(query, ws, &snaps[shard]);
  counters.answer_nanos.fetch_add(
      static_cast<uint64_t>(timer.ElapsedSeconds() * 1e9),
      std::memory_order_relaxed);
  counters.queries.fetch_add(1, std::memory_order_relaxed);
  if (!result.ok()) {
    counters.failures.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

Result<uint32_t> ShardedEngine::ApplyEdgeWeightUpdates(
    size_t shard, const RsaKeyPair& keys,
    std::span<const EdgeWeightUpdate> updates) {
  if (shard >= shards_.size()) {
    return Status::InvalidArgument("shard index out of range");
  }
  Result<uint32_t> version =
      shards_[shard]->ApplyEdgeWeightUpdates(keys, updates);
  Counters& counters = counters_[shard];
  if (version.ok()) {
    counters.updates.fetch_add(updates.size(), std::memory_order_relaxed);
  } else {
    counters.update_failures.fetch_add(1, std::memory_order_relaxed);
  }
  return version;
}

Result<uint32_t> ShardedEngine::ApplyEdgeWeightUpdate(size_t shard,
                                                      const RsaKeyPair& keys,
                                                      NodeId u, NodeId v,
                                                      double new_weight) {
  const EdgeWeightUpdate update{u, v, new_weight};
  return ApplyEdgeWeightUpdates(shard, keys, {&update, 1});
}

Result<uint32_t> ShardedEngine::ApplyEdgeWeightUpdatesAllShards(
    const RsaKeyPair& keys, std::span<const EdgeWeightUpdate> updates) {
  uint32_t version = 0;
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    SPAUTH_ASSIGN_OR_RETURN(version,
                            ApplyEdgeWeightUpdates(shard, keys, updates));
  }
  return version;
}

Result<uint32_t> ShardedEngine::ApplyEdgeWeightUpdateAllShards(
    const RsaKeyPair& keys, NodeId u, NodeId v, double new_weight) {
  const EdgeWeightUpdate update{u, v, new_weight};
  return ApplyEdgeWeightUpdatesAllShards(keys, {&update, 1});
}

std::vector<Result<uint32_t>> ShardedEngine::ApplyUpdateStream(
    std::span<const EdgeWeightUpdate> updates, const RsaKeyPair& keys) {
  std::vector<Result<uint32_t>> results(
      updates.size(), Status::Internal("update not applied"));
  for (size_t i = 0; i < updates.size(); ++i) {
    results[i] = ApplyEdgeWeightUpdate(RouteOfUpdate(updates[i]), keys,
                                       updates[i].u, updates[i].v,
                                       updates[i].new_weight);
  }
  return results;
}

std::vector<Result<std::shared_ptr<const ProofBundle>>>
ShardedEngine::AnswerBatch(std::span<const Query> queries,
                           size_t num_threads) const {
  std::vector<Result<std::shared_ptr<const ProofBundle>>> results(
      queries.size(), Status::Internal("query not answered"));
  if (queries.empty()) {
    return results;
  }
  if (num_threads == 0) {
    num_threads = ThreadPool::DefaultThreads(queries.size());
  }
  num_threads = std::min(num_threads, queries.size());
  if (num_threads <= 1) {
    SearchWorkspace ws;
    std::vector<std::shared_ptr<const EngineState>> snaps(shards_.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      results[i] = AnswerPinned(queries[i], ws, snaps);
    }
    return results;
  }
  ThreadPool pool(num_threads);
  std::atomic<size_t> next{0};
  for (size_t w = 0; w < num_threads; ++w) {
    pool.Submit([this, &queries, &results, &next] {
      SearchWorkspace ws;  // per-worker scratch, hot for the whole stream
      // One pinned snapshot per shard per worker: the steady-state read
      // path is an epoch load, not a slot acquire.
      std::vector<std::shared_ptr<const EngineState>> snaps(shards_.size());
      for (size_t i = next.fetch_add(1); i < queries.size();
           i = next.fetch_add(1)) {
        results[i] = AnswerPinned(queries[i], ws, snaps);
      }
    });
  }
  pool.Wait();
  return results;
}

ShardedStats ShardedEngine::GetStats() const {
  ShardedStats stats;
  stats.shards.resize(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    ShardStats& s = stats.shards[i];
    s.queries = counters_[i].queries.load(std::memory_order_relaxed);
    s.failures = counters_[i].failures.load(std::memory_order_relaxed);
    s.answer_micros =
        counters_[i].answer_nanos.load(std::memory_order_relaxed) / 1000;
    s.updates = counters_[i].updates.load(std::memory_order_relaxed);
    s.update_failures =
        counters_[i].update_failures.load(std::memory_order_relaxed);
    s.rotation_clone_bytes = shards_[i]->rotation_clone_bytes();
    s.live_snapshots = shards_[i]->live_snapshots();
    // Read off the pinned snapshot rather than certificate(), which would
    // copy the whole certificate (signature included) for one field.
    s.certificate_version =
        shards_[i]->CurrentState()->certificate.params.version;
    s.cache = shards_[i]->proof_cache_stats();

    stats.totals.queries += s.queries;
    stats.totals.failures += s.failures;
    stats.totals.answer_micros += s.answer_micros;
    stats.totals.updates += s.updates;
    stats.totals.update_failures += s.update_failures;
    stats.totals.rotation_clone_bytes += s.rotation_clone_bytes;
    stats.totals.live_snapshots += s.live_snapshots;
    stats.totals.certificate_version =
        std::max(stats.totals.certificate_version, s.certificate_version);
    stats.totals.cache.hits += s.cache.hits;
    stats.totals.cache.misses += s.cache.misses;
    stats.totals.cache.insertions += s.cache.insertions;
    stats.totals.cache.evictions += s.cache.evictions;
    stats.totals.cache.cleared += s.cache.cleared;
    stats.totals.cache.hit_bytes += s.cache.hit_bytes;
    stats.totals.cache.entries += s.cache.entries;
  }
  return stats;
}

}  // namespace spauth
