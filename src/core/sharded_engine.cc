#include "core/sharded_engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "util/failpoint.h"
#include "util/hash_mix.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace spauth {

namespace {

// Relaxed high-water update for gauge counters (worst lag observed).
void AtomicMax(std::atomic<uint64_t>& slot, uint64_t value) {
  uint64_t cur = slot.load(std::memory_order_relaxed);
  while (cur < value &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

// Severity order for the totals gauge: open (denying) > half-open
// (probing) > closed (healthy). The enum's numeric order differs, so this
// cannot be a plain max.
BreakerState MoreSevere(BreakerState a, BreakerState b) {
  const auto rank = [](BreakerState s) {
    switch (s) {
      case BreakerState::kOpen:
        return 2;
      case BreakerState::kHalfOpen:
        return 1;
      case BreakerState::kClosed:
        return 0;
    }
    return 0;
  };
  return rank(a) >= rank(b) ? a : b;
}

}  // namespace

size_t HashSourceRouter::Route(const Query& query, size_t num_shards) const {
  // Source ids are dense and correlated, so spread them before the modulo.
  const uint64_t h = SplitMix64Finalize(query.source);
  return num_shards == 0 ? 0 : h % num_shards;
}

size_t ExplicitMapRouter::Route(const Query& query,
                                size_t num_shards) const {
  if (num_shards == 0) {
    return 0;
  }
  const uint32_t shard = query.source < shard_of_source_.size()
                             ? shard_of_source_[query.source]
                             : fallback_shard_;
  return shard % num_shards;
}

ShardedEngine::ShardedEngine(std::vector<std::unique_ptr<MethodEngine>> shards,
                             std::unique_ptr<ShardRouter> router,
                             FailoverOptions failover)
    : shards_(std::move(shards)),
      router_(std::move(router)),
      failover_(failover),
      num_groups_(shards_.size() / failover_.replicas_per_group),
      counters_(std::make_unique<Counters[]>(shards_.size())) {
  if (failover_.enable_breakers) {
    health_.reserve(shards_.size());
    for (size_t i = 0; i < shards_.size(); ++i) {
      health_.push_back(std::make_unique<ShardHealth>(failover_.breaker));
    }
  }
}

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::Build(
    std::span<const ShardSpec> specs, std::unique_ptr<ShardRouter> router,
    const RsaKeyPair& keys, const FailoverOptions& failover) {
  if (specs.empty()) {
    return Status::InvalidArgument("a sharded engine needs at least 1 shard");
  }
  if (failover.replicas_per_group == 0 || failover.max_attempts == 0) {
    return Status::InvalidArgument(
        "failover needs at least 1 replica per group and 1 attempt");
  }
  if (specs.size() % failover.replicas_per_group != 0) {
    return Status::InvalidArgument(
        "replicas_per_group must divide the shard count");
  }
  std::vector<std::unique_ptr<MethodEngine>> shards;
  shards.reserve(specs.size());
  for (const ShardSpec& spec : specs) {
    if (spec.graph == nullptr) {
      return Status::InvalidArgument("shard spec has a null graph");
    }
    if (spec.options.method != specs.front().options.method) {
      return Status::InvalidArgument(
          "all shards of one engine must share the method");
    }
    SPAUTH_ASSIGN_OR_RETURN(std::unique_ptr<MethodEngine> engine,
                            MakeEngine(*spec.graph, spec.options, keys));
    shards.push_back(std::move(engine));
  }
  if (router == nullptr) {
    router = std::make_unique<HashSourceRouter>();
  }
  auto engine = std::unique_ptr<ShardedEngine>(
      new ShardedEngine(std::move(shards), std::move(router), failover));
  // A fleet built over one graph pointer is replicated: every engine
  // serves the same network, so adopting another group's snapshot is as
  // sound as adopting a sibling's. Region fleets (distinct graphs) must
  // never cross-adopt — their snapshots answer different worlds.
  engine->replicated_fleet_ = std::all_of(
      specs.begin(), specs.end(),
      [&](const ShardSpec& s) { return s.graph == specs.front().graph; });
  return engine;
}

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::BuildReplicated(
    const Graph& g, const EngineOptions& options, size_t num_shards,
    const RsaKeyPair& keys, std::unique_ptr<ShardRouter> router) {
  return BuildReplicated(g, options, num_shards, keys, FailoverOptions{},
                         std::move(router));
}

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::BuildReplicated(
    const Graph& g, const EngineOptions& options, size_t num_groups,
    const RsaKeyPair& keys, const FailoverOptions& failover,
    std::unique_ptr<ShardRouter> router) {
  if (failover.replicas_per_group == 0) {
    return Status::InvalidArgument("replicas_per_group must be >= 1");
  }
  std::vector<ShardSpec> specs(
      std::max<size_t>(num_groups, 1) * failover.replicas_per_group,
      ShardSpec{&g, options});
  return Build(specs, std::move(router), keys, failover);
}

Result<std::shared_ptr<const ProofBundle>> ShardedEngine::Answer(
    const Query& query) const {
  SearchWorkspace ws;
  return Answer(query, ws);
}

Result<std::shared_ptr<const ProofBundle>> ShardedEngine::Answer(
    const Query& query, SearchWorkspace& ws) const {
  return AnswerPinned(query, ws, {});
}

Result<std::shared_ptr<const ProofBundle>> ShardedEngine::AttemptOnEngine(
    size_t engine, const Query& query, SearchWorkspace& ws,
    std::span<std::shared_ptr<const EngineState>> snaps) const {
  Result<std::shared_ptr<const ProofBundle>> result =
      SPAUTH_FAILPOINT_TRIGGERED_ARG("shard/answer", engine)
          ? Result<std::shared_ptr<const ProofBundle>>(
                Status::Unavailable("fail point fired: shard/answer"))
          : (snaps.empty()
                 ? shards_[engine]->AnswerShared(query, ws)
                 : shards_[engine]->AnswerShared(query, ws, &snaps[engine]));
  if (!health_.empty()) {
    // Only a retryable error indicts the replica; an OK answer or a
    // client error (bad query) proves it responded and must not trip the
    // breaker.
    if (!result.ok() && IsRetryable(result.status().code())) {
      health_[engine]->RecordFailure();
    } else {
      health_[engine]->RecordSuccess();
    }
  }
  return result;
}

Result<std::shared_ptr<const ProofBundle>> ShardedEngine::AnswerPinned(
    const Query& query, SearchWorkspace& ws,
    std::span<std::shared_ptr<const EngineState>> snaps) const {
  const size_t group = RouteOf(query);
  const size_t replicas = failover_.replicas_per_group;
  const size_t base = group * replicas;
  WallTimer timer;
  // Preferred replica: a second, independent source hash (the router
  // already consumed SplitMix64(source) % groups), so client sessions
  // spread across a group's replica caches but each source stays pinned
  // to one hot cache.
  const size_t preferred =
      replicas == 1
          ? 0
          : SplitMix64Finalize(query.source + 0x632be59bd9b4e019ull) % replicas;
  size_t last_engine = base + preferred;  // books the query if no attempt runs
  Result<std::shared_ptr<const ProofBundle>> result =
      Status::Unavailable("no serving attempt made");
  size_t cursor = preferred;
  double backoff_us = static_cast<double>(failover_.backoff_base_us);
  for (size_t attempt = 0; attempt < failover_.max_attempts; ++attempt) {
    if (failover_.deadline_us > 0 &&
        static_cast<uint64_t>(timer.ElapsedSeconds() * 1e6) >=
            failover_.deadline_us) {
      result = Status::DeadlineExceeded("per-query deadline budget exhausted");
      // Book the deadline hit against the routed group's preferred replica:
      // last_engine may be a spill target in another group (or, on an
      // attempt-0 expiry, a replica that never served an attempt), and
      // charging the budget miss there skews the foreign group's counters.
      counters_[base + preferred].deadline_exceeded.fetch_add(
          1, std::memory_order_relaxed);
      break;
    }
    // Next admitted replica from the cursor; open breakers are skipped,
    // half-open ones admit this query as a probe. With cross-group
    // failover enabled, a fully breaker-denied group spills over to the
    // next group's replicas (replicated fleets serve the same network
    // everywhere, so the answer stays byte-identical).
    const size_t group_span =
        failover_.cross_group_failover ? num_groups_ : 1;
    size_t chosen = replicas;
    size_t chosen_base = base;
    for (size_t g = 0; g < group_span && chosen == replicas; ++g) {
      const size_t scan_base = ((group + g) % num_groups_) * replicas;
      for (size_t k = 0; k < replicas; ++k) {
        const size_t replica = (cursor + k) % replicas;
        const size_t engine = scan_base + replica;
        if (!health_.empty() && !health_[engine]->AllowRequest()) {
          counters_[engine].breaker_skips.fetch_add(1,
                                                    std::memory_order_relaxed);
          continue;
        }
        chosen = replica;
        chosen_base = scan_base;
        break;
      }
    }
    if (chosen == replicas) {
      result = Status::Unavailable("all replicas unavailable: breakers open");
      break;
    }
    const size_t engine = chosen_base + chosen;
    last_engine = engine;
    if (attempt > 0) {
      counters_[engine].retries.fetch_add(1, std::memory_order_relaxed);
    }
    result = AttemptOnEngine(engine, query, ws, snaps);
    if (result.ok()) {
      if (attempt > 0) {
        counters_[engine].failovers.fetch_add(1, std::memory_order_relaxed);
      }
      if (engine / replicas != group) {
        counters_[engine].cross_group_serves.fetch_add(
            1, std::memory_order_relaxed);
      }
      break;
    }
    if (!IsRetryable(result.status().code())) {
      break;  // a client error will not improve on another replica
    }
    cursor = (chosen + 1) % replicas;  // prefer a sibling next attempt
    if (attempt + 1 < failover_.max_attempts && backoff_us > 0.0) {
      // Deterministic jitter: up to +50%, drawn from a stream seeded by
      // (jitter_seed, source, target, attempt) — a chaos run replays its
      // exact backoff schedule from the printed seed.
      Rng jitter(SplitMix64Finalize(
          failover_.jitter_seed ^
          ((static_cast<uint64_t>(query.source) << 32) | query.target) ^
          (attempt * 0x9e3779b97f4a7c15ull)));
      // Every sleep is capped at max_backoff_us BEFORE the integral cast:
      // with deadline_us == 0 nothing else bounds backoff_us, and a large
      // multiplier would push it past what uint64_t can represent — the
      // cast of such a double is undefined behavior, not saturation.
      const double cap_us = static_cast<double>(
          failover_.max_backoff_us > 0 ? failover_.max_backoff_us
                                       : uint64_t{1'000'000});
      double sleep_us =
          std::min(backoff_us * (1.0 + 0.5 * jitter.NextDouble()), cap_us);
      if (failover_.deadline_us > 0) {
        const double remaining_us =
            static_cast<double>(failover_.deadline_us) -
            timer.ElapsedSeconds() * 1e6;
        sleep_us = std::min(sleep_us, std::max(remaining_us, 0.0));
      }
      if (sleep_us > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(static_cast<uint64_t>(sleep_us)));
      }
      // Clamp the growth too, so backoff_us itself cannot reach +inf and
      // poison the next round's arithmetic.
      backoff_us = std::min(backoff_us * failover_.backoff_multiplier, cap_us);
    }
  }
  Counters& counters = counters_[last_engine];
  counters.answer_nanos.fetch_add(
      static_cast<uint64_t>(timer.ElapsedSeconds() * 1e9),
      std::memory_order_relaxed);
  counters.queries.fetch_add(1, std::memory_order_relaxed);
  if (!result.ok()) {
    counters.failures.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

Result<uint32_t> ShardedEngine::RotateGroup(
    size_t group, const RsaKeyPair& keys,
    std::span<const EdgeWeightUpdate> updates) {
  if (group >= num_groups_) {
    return Status::InvalidArgument("group index out of range");
  }
  // Self-repair first: an earlier torn rotation may have left part of the
  // group behind. Rotating on top of diverged bases would compound the
  // split (different versions signing different worlds forever), so bring
  // every laggard to the most advanced sibling's snapshot before touching
  // anything. A failed heal aborts the rotation with a retryable error —
  // better a stale lock-step group than a fresh diverged one.
  if (failover_.replicas_per_group > 1) {
    SPAUTH_ASSIGN_OR_RETURN(size_t healed, HealGroup(group));
    (void)healed;
  }
  // Lock-step across the group's replicas: a failed replica aborts the
  // walk immediately, leaving it (and any replicas after it) on the old
  // snapshot — zero torn state per engine, bounded staleness per group.
  uint32_t version = 0;
  for (size_t replica = 0; replica < failover_.replicas_per_group; ++replica) {
    const size_t engine = group * failover_.replicas_per_group + replica;
    // Forest mode: the per-shard RSA signature is dead weight (the forest
    // root's one signature authenticates the certificate body), so the
    // replicas rotate defer-signed and the caller publishes the forest.
    Result<uint32_t> applied =
        forest_enabled_
            ? shards_[engine]->ApplyEdgeWeightUpdatesUnsigned(updates)
            : shards_[engine]->ApplyEdgeWeightUpdates(keys, updates);
    Counters& counters = counters_[engine];
    if (!applied.ok()) {
      counters.update_failures.fetch_add(1, std::memory_order_relaxed);
      return applied;
    }
    counters.updates.fetch_add(updates.size(), std::memory_order_relaxed);
    version = applied.value();
  }
  return version;
}

Result<uint32_t> ShardedEngine::ApplyEdgeWeightUpdates(
    size_t group, const RsaKeyPair& keys,
    std::span<const EdgeWeightUpdate> updates) {
  SPAUTH_ASSIGN_OR_RETURN(uint32_t version, RotateGroup(group, keys, updates));
  if (forest_enabled_) {
    // One group moved, so the old epoch's leaf for it went stale: publish
    // the next epoch (one signature) covering the fleet as it stands.
    SPAUTH_RETURN_IF_ERROR(PublishForest(keys));
  }
  return version;
}

Result<size_t> ShardedEngine::HealGroup(size_t group) {
  if (group >= num_groups_) {
    return Status::InvalidArgument("group index out of range");
  }
  const size_t replicas = failover_.replicas_per_group;
  const size_t base = group * replicas;
  // The most advanced replica is the heal source: its snapshot carries the
  // newest signature the owner actually produced, so adopting it never
  // invents state — it replays a publish the group already saw.
  size_t source = base;
  uint32_t source_version =
      shards_[base]->CurrentState()->certificate.params.version;
  for (size_t r = 1; r < replicas; ++r) {
    const uint32_t v =
        shards_[base + r]->CurrentState()->certificate.params.version;
    if (v > source_version) {
      source_version = v;
      source = base + r;
    }
  }
  size_t healed = 0;
  for (size_t r = 0; r < replicas; ++r) {
    const size_t engine = base + r;
    if (engine == source) {
      continue;
    }
    if (shards_[engine]->CurrentState()->certificate.params.version >=
        source_version) {
      continue;  // already in lock-step
    }
    if (SPAUTH_FAILPOINT_TRIGGERED_ARG("replica/resync", engine)) {
      counters_[engine].resync_failures.fetch_add(1,
                                                  std::memory_order_relaxed);
      return Status::Unavailable("fail point fired: replica/resync");
    }
    Result<uint32_t> adopted = shards_[engine]->AdoptStateFrom(*shards_[source]);
    if (!adopted.ok()) {
      counters_[engine].resync_failures.fetch_add(1,
                                                  std::memory_order_relaxed);
      return adopted.status();
    }
    counters_[engine].resyncs.fetch_add(1, std::memory_order_relaxed);
    ++healed;
  }
  return healed;
}

Result<size_t> ShardedEngine::Heal() {
  size_t healed = 0;
  for (size_t group = 0; group < num_groups_; ++group) {
    SPAUTH_ASSIGN_OR_RETURN(size_t h, HealGroup(group));
    healed += h;
  }
  return healed;
}

Result<size_t> ShardedEngine::RollFleetForward() {
  if (!replicated_fleet_) {
    return Status::FailedPrecondition(
        "cross-group roll-forward needs a replicated fleet: the groups "
        "serve different networks, so adoption would answer the wrong one");
  }
  // Global heal source: the most advanced engine anywhere in the fleet.
  // Like HealGroup, adopting it never invents state — it replays the
  // newest publish the owner actually produced.
  size_t source = 0;
  uint32_t source_version =
      shards_[0]->CurrentState()->certificate.params.version;
  for (size_t i = 1; i < shards_.size(); ++i) {
    const uint32_t v =
        shards_[i]->CurrentState()->certificate.params.version;
    if (v > source_version) {
      source_version = v;
      source = i;
    }
  }
  size_t rolled = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (i == source ||
        shards_[i]->CurrentState()->certificate.params.version >=
            source_version) {
      continue;
    }
    if (SPAUTH_FAILPOINT_TRIGGERED_ARG("replica/resync", i)) {
      counters_[i].resync_failures.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("fail point fired: replica/resync");
    }
    Result<uint32_t> adopted = shards_[i]->AdoptStateFrom(*shards_[source]);
    if (!adopted.ok()) {
      counters_[i].resync_failures.fetch_add(1, std::memory_order_relaxed);
      return adopted.status();
    }
    counters_[i].resyncs.fetch_add(1, std::memory_order_relaxed);
    counters_[i].fleet_rollforwards.fetch_add(1, std::memory_order_relaxed);
    ++rolled;
  }
  return rolled;
}

Status ShardedEngine::EnableForestCertificates(const RsaKeyPair& keys,
                                               uint32_t forest_fanout) {
  if (forest_fanout < 2) {
    return Status::InvalidArgument("forest fanout must be >= 2");
  }
  if (forest_enabled_) {
    return Status::FailedPrecondition("forest certificates already enabled");
  }
  // The forest certifies replica 0's certificate per group, so the
  // siblings must serve the same certificate bytes before the first epoch
  // covers them — heal any laggards from earlier torn rotations first.
  if (failover_.replicas_per_group > 1) {
    SPAUTH_ASSIGN_OR_RETURN(size_t healed, Heal());
    (void)healed;
  }
  forest_fanout_ = forest_fanout;
  forest_enabled_ = true;
  const Status published = PublishForest(keys);
  if (!published.ok()) {
    // Stay in per-shard mode: every certificate out there is still signed,
    // so serving continues exactly as before the call.
    forest_enabled_ = false;
    return published;
  }
  return Status::Ok();
}

std::shared_ptr<const FleetCertificate> ShardedEngine::forest() const {
  std::lock_guard<std::mutex> lock(forest_mu_);
  return fleet_;
}

Status ShardedEngine::PublishForest(const RsaKeyPair& keys) {
  const size_t replicas = failover_.replicas_per_group;
  // One leaf per routing group: lock-step rotations (plus the heals above
  // every rotation) keep the replicas byte-identical, so the group's
  // replica 0 speaks for all of them.
  std::vector<Digest> leaves(num_groups_);
  for (size_t group = 0; group < num_groups_; ++group) {
    leaves[group] =
        shards_[group * replicas]->CurrentState()->certificate.BodyDigest();
  }
  ForestParams params;
  params.fleet_epoch = fleet_epoch_.load(std::memory_order_acquire) + 1;
  params.num_shards = static_cast<uint32_t>(num_groups_);
  params.fanout = forest_fanout_;
  params.alg = shards_[0]->CurrentState()->certificate.params.alg;
  SPAUTH_ASSIGN_OR_RETURN(ForestBuild build,
                          BuildForestCertificate(keys, params, leaves));
  // Pre-encode once per epoch: the serving tier attaches a path to every
  // answer, and that must be a memcpy of these bytes, not an encode.
  auto fleet = std::make_shared<FleetCertificate>();
  fleet->certificate = std::move(build.certificate);
  fleet->paths = std::move(build.paths);
  ByteWriter cert_writer;
  cert_writer.Reserve(fleet->certificate.SerializedSize());
  fleet->certificate.Serialize(&cert_writer);
  fleet->encoded_certificate = cert_writer.TakeBytes();
  fleet->encoded_paths.resize(fleet->paths.size());
  for (size_t i = 0; i < fleet->paths.size(); ++i) {
    ByteWriter path_writer;
    path_writer.Reserve(fleet->paths[i].SerializedSize());
    fleet->paths[i].Serialize(&path_writer);
    fleet->encoded_paths[i] = path_writer.TakeBytes();
  }
  {
    std::lock_guard<std::mutex> lock(forest_mu_);
    fleet_ = std::move(fleet);
  }
  fleet_epoch_.store(params.fleet_epoch, std::memory_order_release);
  return Status::Ok();
}

Result<uint32_t> ShardedEngine::ApplyEdgeWeightUpdate(size_t group,
                                                      const RsaKeyPair& keys,
                                                      NodeId u, NodeId v,
                                                      double new_weight) {
  const EdgeWeightUpdate update{u, v, new_weight};
  return ApplyEdgeWeightUpdates(group, keys, {&update, 1});
}

Result<uint32_t> ShardedEngine::ApplyEdgeWeightUpdatesAllShards(
    const RsaKeyPair& keys, std::span<const EdgeWeightUpdate> updates) {
  // Every group gets its attempt even after one fails: aborting mid-walk
  // (the old behavior) left the tail of the fleet on the previous version
  // for no reason — one bad group's failure is not a reason to starve the
  // groups after it.
  uint32_t version = 0;
  Status first_error = Status::Ok();
  for (size_t group = 0; group < num_groups_; ++group) {
    Result<uint32_t> rotated = RotateGroup(group, keys, updates);
    if (rotated.ok()) {
      version = std::max(version, rotated.value());
    } else if (first_error.ok()) {
      first_error = rotated.status();
    }
  }
  if (!first_error.ok() && replicated_fleet_) {
    // Repair before reporting: the failed (or torn) groups roll forward
    // to the fleet's most advanced snapshot, so the caller gets back a
    // uniform fleet plus the root cause — not a split-brain fleet. Only
    // sound on replicated fleets; region fleets keep the failed group
    // stale until the owner retries it.
    Result<size_t> rolled = RollFleetForward();
    (void)rolled;  // best-effort: the rotation error below is the root cause
  }
  if (forest_enabled_) {
    // ONE forest signature for the whole fleet rotation, after the repair,
    // so the published epoch always certifies the fleet as it now serves.
    const Status published = PublishForest(keys);
    if (first_error.ok()) {
      SPAUTH_RETURN_IF_ERROR(published);
    }
  }
  if (!first_error.ok()) {
    return first_error;
  }
  return version;
}

Result<uint32_t> ShardedEngine::ApplyEdgeWeightUpdateAllShards(
    const RsaKeyPair& keys, NodeId u, NodeId v, double new_weight) {
  const EdgeWeightUpdate update{u, v, new_weight};
  return ApplyEdgeWeightUpdatesAllShards(keys, {&update, 1});
}

Result<uint32_t> ShardedEngine::RotateGroupStructural(
    size_t group, const RsaKeyPair& keys,
    std::span<const StructuralUpdate> ops) {
  if (group >= num_groups_) {
    return Status::InvalidArgument("group index out of range");
  }
  // Same self-repair-then-lock-step discipline as RotateGroup: structural
  // rotations on diverged bases would split the group's SHAPE, not just
  // its version — strictly worse — so heal first, abort on a failed heal.
  if (failover_.replicas_per_group > 1) {
    SPAUTH_ASSIGN_OR_RETURN(size_t healed, HealGroup(group));
    (void)healed;
  }
  uint32_t version = 0;
  for (size_t replica = 0; replica < failover_.replicas_per_group; ++replica) {
    const size_t engine = group * failover_.replicas_per_group + replica;
    Result<uint32_t> applied =
        forest_enabled_
            ? shards_[engine]->ApplyStructuralUpdatesUnsigned(ops)
            : shards_[engine]->ApplyStructuralUpdates(keys, ops);
    Counters& counters = counters_[engine];
    if (!applied.ok()) {
      counters.update_failures.fetch_add(1, std::memory_order_relaxed);
      return applied;
    }
    counters.structural_updates.fetch_add(ops.size(),
                                          std::memory_order_relaxed);
    version = applied.value();
  }
  return version;
}

Result<uint32_t> ShardedEngine::ApplyStructuralUpdates(
    size_t group, const RsaKeyPair& keys,
    std::span<const StructuralUpdate> ops) {
  SPAUTH_ASSIGN_OR_RETURN(uint32_t version,
                          RotateGroupStructural(group, keys, ops));
  if (forest_enabled_) {
    SPAUTH_RETURN_IF_ERROR(PublishForest(keys));
  }
  return version;
}

Result<uint32_t> ShardedEngine::ApplyStructuralUpdate(
    size_t group, const RsaKeyPair& keys, const StructuralUpdate& op) {
  return ApplyStructuralUpdates(group, keys, {&op, 1});
}

Result<uint32_t> ShardedEngine::ApplyStructuralUpdatesAllShards(
    const RsaKeyPair& keys, std::span<const StructuralUpdate> ops) {
  // Mirrors ApplyEdgeWeightUpdatesAllShards: every group gets its attempt,
  // then the replicated-fleet roll-forward repair, then ONE forest publish.
  uint32_t version = 0;
  Status first_error = Status::Ok();
  for (size_t group = 0; group < num_groups_; ++group) {
    Result<uint32_t> rotated = RotateGroupStructural(group, keys, ops);
    if (rotated.ok()) {
      version = std::max(version, rotated.value());
    } else if (first_error.ok()) {
      first_error = rotated.status();
    }
  }
  if (!first_error.ok() && replicated_fleet_) {
    Result<size_t> rolled = RollFleetForward();
    (void)rolled;  // best-effort: the rotation error below is the root cause
  }
  if (forest_enabled_) {
    const Status published = PublishForest(keys);
    if (first_error.ok()) {
      SPAUTH_RETURN_IF_ERROR(published);
    }
  }
  if (!first_error.ok()) {
    return first_error;
  }
  return version;
}

Status ShardedEngine::EnableUpdateQueues(const UpdateQueueOptions& options,
                                         bool fleet_lock_step) {
  if (!queues_.empty()) {
    return Status::FailedPrecondition("update queues already enabled");
  }
  if (fleet_lock_step && !replicated_fleet_) {
    return Status::FailedPrecondition(
        "a fleet-lock-step queue needs a replicated fleet: on region "
        "partitions it would apply every region's ops to every region");
  }
  const size_t count = fleet_lock_step ? 1 : num_groups_;
  queues_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    queues_.push_back(std::make_unique<OwnerQueue>(options));
  }
  queues_fleet_lock_step_ = fleet_lock_step;
  return Status::Ok();
}

Result<bool> ShardedEngine::EnqueueWeightUpdate(size_t queue,
                                                const RsaKeyPair& keys,
                                                const EdgeWeightUpdate& update,
                                                uint64_t now_micros) {
  if (queue >= queues_.size()) {
    return queues_.empty()
               ? Status::FailedPrecondition("update queues are not enabled")
               : Status::InvalidArgument("queue index out of range");
  }
  bool trigger = false;
  {
    std::lock_guard<std::mutex> lock(queues_[queue]->mu);
    trigger = queues_[queue]->queue.EnqueueWeight(update, now_micros);
  }
  const size_t preferred =
      queues_fleet_lock_step_ ? 0 : queue * failover_.replicas_per_group;
  counters_[preferred].enqueued_updates.fetch_add(1,
                                                  std::memory_order_relaxed);
  if (!trigger) {
    return false;
  }
  SPAUTH_ASSIGN_OR_RETURN(size_t drained, FlushQueue(queue, keys, now_micros));
  return drained > 0;
}

Result<bool> ShardedEngine::EnqueueStructuralUpdate(size_t queue,
                                                    const RsaKeyPair& keys,
                                                    const StructuralUpdate& op,
                                                    uint64_t now_micros) {
  if (queue >= queues_.size()) {
    return queues_.empty()
               ? Status::FailedPrecondition("update queues are not enabled")
               : Status::InvalidArgument("queue index out of range");
  }
  bool trigger = false;
  {
    std::lock_guard<std::mutex> lock(queues_[queue]->mu);
    trigger = queues_[queue]->queue.EnqueueStructural(op, now_micros);
  }
  const size_t preferred =
      queues_fleet_lock_step_ ? 0 : queue * failover_.replicas_per_group;
  counters_[preferred].enqueued_updates.fetch_add(1,
                                                  std::memory_order_relaxed);
  if (!trigger) {
    return false;
  }
  SPAUTH_ASSIGN_OR_RETURN(size_t drained, FlushQueue(queue, keys, now_micros));
  return drained > 0;
}

Result<size_t> ShardedEngine::PollUpdateQueues(const RsaKeyPair& keys,
                                               uint64_t now_micros) {
  if (queues_.empty()) {
    return Status::FailedPrecondition("update queues are not enabled");
  }
  size_t drained = 0;
  for (size_t i = 0; i < queues_.size(); ++i) {
    bool due = false;
    {
      std::lock_guard<std::mutex> lock(queues_[i]->mu);
      due = queues_[i]->queue.ShouldFlush(now_micros);
    }
    if (due) {
      SPAUTH_ASSIGN_OR_RETURN(size_t d, FlushQueue(i, keys, now_micros));
      drained += d;
    }
  }
  return drained;
}

Result<size_t> ShardedEngine::DrainUpdateQueues(const RsaKeyPair& keys,
                                                uint64_t now_micros) {
  if (queues_.empty()) {
    return Status::FailedPrecondition("update queues are not enabled");
  }
  size_t drained = 0;
  for (size_t i = 0; i < queues_.size(); ++i) {
    SPAUTH_ASSIGN_OR_RETURN(size_t d, FlushQueue(i, keys, now_micros));
    drained += d;
  }
  return drained;
}

UpdateQueueStats ShardedEngine::update_queue_stats(size_t queue) const {
  if (queue >= queues_.size()) {
    return UpdateQueueStats{};
  }
  std::lock_guard<std::mutex> lock(queues_[queue]->mu);
  return queues_[queue]->queue.stats();
}

Result<size_t> ShardedEngine::FlushQueue(size_t queue, const RsaKeyPair& keys,
                                         uint64_t now_micros) {
  OwnerQueue& oq = *queues_[queue];
  std::lock_guard<std::mutex> lock(oq.mu);
  const UpdateQueueStats before = oq.queue.stats();
  const Status flushed = oq.queue.Flush(
      now_micros,
      [&](std::span<const EdgeWeightUpdate> run) {
        return queues_fleet_lock_step_
                   ? ApplyEdgeWeightUpdatesAllShards(keys, run).status()
                   : ApplyEdgeWeightUpdates(queue, keys, run).status();
      },
      [&](std::span<const StructuralUpdate> run) {
        return queues_fleet_lock_step_
                   ? ApplyStructuralUpdatesAllShards(keys, run).status()
                   : ApplyStructuralUpdates(queue, keys, run).status();
      });
  // Book what actually drained (a failed flush may still have rotated its
  // leading runs) on the queue's preferred engine, then surface the error.
  const UpdateQueueStats& after = oq.queue.stats();
  const size_t preferred =
      queues_fleet_lock_step_ ? 0 : queue * failover_.replicas_per_group;
  Counters& counters = counters_[preferred];
  counters.coalesced_rotations.fetch_add(after.rotations - before.rotations,
                                         std::memory_order_relaxed);
  AtomicMax(counters.update_lag_micros, after.max_lag_micros);
  SPAUTH_RETURN_IF_ERROR(flushed);
  return after.flushed_ops - before.flushed_ops;
}

std::vector<Result<uint32_t>> ShardedEngine::ApplyUpdateStream(
    std::span<const EdgeWeightUpdate> updates, const RsaKeyPair& keys) {
  std::vector<Result<uint32_t>> results(
      updates.size(), Status::Internal("update not applied"));
  for (size_t i = 0; i < updates.size(); ++i) {
    results[i] = ApplyEdgeWeightUpdate(RouteOfUpdate(updates[i]), keys,
                                       updates[i].u, updates[i].v,
                                       updates[i].new_weight);
  }
  return results;
}

std::vector<Result<std::shared_ptr<const ProofBundle>>>
ShardedEngine::AnswerBatch(std::span<const Query> queries,
                           size_t num_threads) const {
  std::vector<Result<std::shared_ptr<const ProofBundle>>> results(
      queries.size(), Status::Internal("query not answered"));
  if (queries.empty()) {
    return results;
  }
  if (num_threads == 0) {
    num_threads = ThreadPool::DefaultThreads(queries.size());
  }
  num_threads = std::min(num_threads, queries.size());
  if (num_threads <= 1) {
    SearchWorkspace ws;
    std::vector<std::shared_ptr<const EngineState>> snaps(shards_.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      results[i] = AnswerPinned(queries[i], ws, snaps);
    }
    return results;
  }
  ThreadPool pool(num_threads);
  std::atomic<size_t> next{0};
  for (size_t w = 0; w < num_threads; ++w) {
    pool.Submit([this, &queries, &results, &next] {
      SearchWorkspace ws;  // per-worker scratch, hot for the whole stream
      // One pinned snapshot per shard per worker: the steady-state read
      // path is an epoch load, not a slot acquire.
      std::vector<std::shared_ptr<const EngineState>> snaps(shards_.size());
      for (size_t i = next.fetch_add(1); i < queries.size();
           i = next.fetch_add(1)) {
        results[i] = AnswerPinned(queries[i], ws, snaps);
      }
    });
  }
  pool.Wait();
  return results;
}

ShardedStats ShardedEngine::GetStats() const {
  ShardedStats stats;
  stats.shards.resize(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    ShardStats& s = stats.shards[i];
    s.queries = counters_[i].queries.load(std::memory_order_relaxed);
    s.failures = counters_[i].failures.load(std::memory_order_relaxed);
    s.answer_micros =
        counters_[i].answer_nanos.load(std::memory_order_relaxed) / 1000;
    s.updates = counters_[i].updates.load(std::memory_order_relaxed);
    s.structural_updates =
        counters_[i].structural_updates.load(std::memory_order_relaxed);
    s.update_failures =
        counters_[i].update_failures.load(std::memory_order_relaxed);
    s.enqueued_updates =
        counters_[i].enqueued_updates.load(std::memory_order_relaxed);
    s.coalesced_rotations =
        counters_[i].coalesced_rotations.load(std::memory_order_relaxed);
    s.update_lag_micros =
        counters_[i].update_lag_micros.load(std::memory_order_relaxed);
    s.retries = counters_[i].retries.load(std::memory_order_relaxed);
    s.failovers = counters_[i].failovers.load(std::memory_order_relaxed);
    s.deadline_exceeded =
        counters_[i].deadline_exceeded.load(std::memory_order_relaxed);
    s.breaker_skips =
        counters_[i].breaker_skips.load(std::memory_order_relaxed);
    s.resyncs = counters_[i].resyncs.load(std::memory_order_relaxed);
    s.resync_failures =
        counters_[i].resync_failures.load(std::memory_order_relaxed);
    s.cross_group_serves =
        counters_[i].cross_group_serves.load(std::memory_order_relaxed);
    s.fleet_rollforwards =
        counters_[i].fleet_rollforwards.load(std::memory_order_relaxed);
    if (!health_.empty()) {
      s.breaker_opens = health_[i]->opens();
      s.breaker_state = health_[i]->state();
    }
    s.rotation_clone_bytes = shards_[i]->rotation_clone_bytes();
    s.live_snapshots = shards_[i]->live_snapshots();
    // Read off the pinned snapshot rather than certificate(), which would
    // copy the whole certificate (signature included) for one field.
    s.certificate_version =
        shards_[i]->CurrentState()->certificate.params.version;
    s.cache = shards_[i]->proof_cache_stats();

    stats.totals.queries += s.queries;
    stats.totals.failures += s.failures;
    stats.totals.answer_micros += s.answer_micros;
    stats.totals.updates += s.updates;
    stats.totals.structural_updates += s.structural_updates;
    stats.totals.update_failures += s.update_failures;
    stats.totals.enqueued_updates += s.enqueued_updates;
    stats.totals.coalesced_rotations += s.coalesced_rotations;
    stats.totals.retries += s.retries;
    stats.totals.failovers += s.failovers;
    stats.totals.deadline_exceeded += s.deadline_exceeded;
    stats.totals.breaker_skips += s.breaker_skips;
    stats.totals.breaker_opens += s.breaker_opens;
    stats.totals.resyncs += s.resyncs;
    stats.totals.resync_failures += s.resync_failures;
    stats.totals.cross_group_serves += s.cross_group_serves;
    stats.totals.fleet_rollforwards += s.fleet_rollforwards;
    stats.totals.rotation_clone_bytes += s.rotation_clone_bytes;
    // Gauges aggregate as the max (or most severe) across shards — a sum
    // of point-in-time readings would report a number no shard observed.
    stats.totals.update_lag_micros =
        std::max(stats.totals.update_lag_micros, s.update_lag_micros);
    stats.totals.live_snapshots =
        std::max(stats.totals.live_snapshots, s.live_snapshots);
    stats.totals.certificate_version =
        std::max(stats.totals.certificate_version, s.certificate_version);
    stats.totals.breaker_state =
        MoreSevere(stats.totals.breaker_state, s.breaker_state);
    stats.totals.cache.hits += s.cache.hits;
    stats.totals.cache.misses += s.cache.misses;
    stats.totals.cache.insertions += s.cache.insertions;
    stats.totals.cache.evictions += s.cache.evictions;
    stats.totals.cache.cleared += s.cache.cleared;
    stats.totals.cache.hit_bytes += s.cache.hit_bytes;
    stats.totals.cache.entries += s.cache.entries;
  }
  return stats;
}

Result<size_t> ReconcileFleetEpoch(std::span<MethodEngine* const> engines) {
  if (engines.empty()) {
    return size_t{0};
  }
  size_t source = 0;
  uint32_t source_version =
      engines[0]->CurrentState()->certificate.params.version;
  for (size_t i = 1; i < engines.size(); ++i) {
    const uint32_t v =
        engines[i]->CurrentState()->certificate.params.version;
    if (v > source_version) {
      source_version = v;
      source = i;
    }
  }
  size_t rolled = 0;
  for (size_t i = 0; i < engines.size(); ++i) {
    if (i == source ||
        engines[i]->CurrentState()->certificate.params.version >=
            source_version) {
      continue;
    }
    SPAUTH_ASSIGN_OR_RETURN(uint32_t adopted,
                            engines[i]->AdoptStateFrom(*engines[source]));
    (void)adopted;
    ++rolled;
  }
  return rolled;
}

}  // namespace spauth
