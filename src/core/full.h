// FULL — fully materialized distances (Section IV-B).
//
// The owner runs Floyd-Warshall (O(|V|^3)) and stores the distance of every
// node pair in a Merkle B-tree keyed by (vi.id, vj.id). A query proof is a
// single authenticated distance tuple (Gamma_S) plus the tuples of the path
// nodes from the network Merkle tree (Gamma_T). Minimal proofs, prohibitive
// pre-computation — the benches of Figures 8c/9b reproduce the explosion.
#ifndef SPAUTH_CORE_FULL_H_
#define SPAUTH_CORE_FULL_H_

#include "core/algosp.h"
#include "core/certificate.h"
#include "core/network_ads.h"
#include "core/verify_outcome.h"
#include "graph/path.h"
#include "graph/workload.h"
#include "merkle/merkle_btree.h"

namespace spauth {

struct VerifyWorkspace;  // core/verify_workspace.h

struct FullOptions {
  NodeOrdering ordering = NodeOrdering::kHilbert;
  uint32_t fanout = 2;           // network tree fanout
  uint32_t distance_fanout = 2;  // distance B-tree fanout
  HashAlgorithm alg = HashAlgorithm::kSha1;
  /// Floyd-Warshall is the paper's algorithm; repeated Dijkstra computes
  /// the same matrix much faster on sparse graphs (kept for tests/tools).
  bool use_floyd_warshall = true;
  uint64_t seed = 1;
};

struct FullAds {
  NetworkAds network;
  MerkleBTree distances;  // all-pairs distance tuples
  Certificate certificate;
};

Result<FullAds> BuildFullAds(const Graph& g, const FullOptions& options,
                             const RsaKeyPair& keys);

struct FullAnswer {
  Path path;
  double distance = 0;
  MerkleBTreeProof distance_proof;  // Gamma_S: one authenticated tuple
  TupleSetProof path_tuples;        // Gamma_T: the path's network tuples

  void Serialize(ByteWriter* out) const;
  static Result<FullAnswer> Deserialize(ByteReader* in);
  /// Decodes into `out`, reusing its vector capacity (the client fast
  /// path); Deserialize is a thin wrapper.
  static Status DeserializeInto(ByteReader* in, FullAnswer* out);
  /// Exact wire size of Serialize(); used to pre-size bundle buffers.
  size_t SerializedSize() const {
    return 4 + path.nodes.size() * 4 + 8 + distance_proof.SerializedSize() +
           path_tuples.SerializedSize();
  }
};

class FullProvider {
 public:
  explicit FullProvider(const Graph* g, const FullAds* ads,
      SpAlgorithm algosp = SpAlgorithm::kDijkstra)
      : g_(g), ads_(ads), algosp_(algosp) {}

  Result<FullAnswer> Answer(const Query& query) const;
  /// Fast path: reuses `ws` across queries (one workspace per thread).
  Result<FullAnswer> Answer(const Query& query, SearchWorkspace& ws) const;

 private:
  const Graph* g_;
  const FullAds* ads_;
  SpAlgorithm algosp_;
};

VerifyOutcome VerifyFullAnswer(const RsaPublicKey& owner_key,
                               const Certificate& cert, const Query& query,
                               const FullAnswer& answer);

/// Fast path: all verification scratch lives in `ws` (see VerifyDijAnswer).
VerifyOutcome VerifyFullAnswer(const RsaPublicKey& owner_key,
                               const Certificate& cert, const Query& query,
                               const FullAnswer& answer, VerifyWorkspace& ws);

}  // namespace spauth

#endif  // SPAUTH_CORE_FULL_H_
