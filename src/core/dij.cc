#include "core/dij.h"

#include <cmath>

#include "core/client_search.h"
#include "core/verify_workspace.h"

namespace spauth {

Result<DijAds> BuildDijAds(const Graph& g, const DijOptions& options,
                           const RsaKeyPair& keys) {
  std::vector<ExtendedTuple> tuples = BuildBaseTuples(g);
  std::vector<NodeId> order = ComputeOrdering(g, options.ordering, options.seed);
  SPAUTH_ASSIGN_OR_RETURN(
      NetworkAds network,
      NetworkAds::Build(std::move(tuples), std::move(order), options.fanout,
                        options.alg));
  MethodParams params;
  params.method = MethodKind::kDij;
  params.alg = options.alg;
  params.fanout = options.fanout;
  params.ordering = options.ordering;
  params.num_network_leaves = static_cast<uint32_t>(network.num_nodes());
  SPAUTH_ASSIGN_OR_RETURN(
      Certificate cert,
      MakeCertificate(keys, std::move(params), network.root(), Digest()));
  return DijAds{std::move(network), std::move(cert)};
}

Result<DijAnswer> DijProvider::Answer(const Query& query) const {
  SearchWorkspace ws;
  return Answer(query, ws);
}

Result<DijAnswer> DijProvider::Answer(const Query& query,
                                      SearchWorkspace& ws) const {
  if (!g_->IsValidNode(query.source) || !g_->IsValidNode(query.target) ||
      query.source == query.target) {
    return Status::InvalidArgument("bad query endpoints");
  }
  PathSearchResult sp =
      RunShortestPath(*g_, query.source, query.target, algosp_, ws);
  if (!sp.reachable) {
    return Status::NotFound("target not reachable from source");
  }
  // Lemma 1: include every node within dist(vs, vt) of vs (with slack so
  // the client's strict checks cannot fail on honest boundary ties).
  DijkstraBall(*g_, query.source, sp.distance + ProviderSlack(sp.distance),
               ws, &ws.ball);
  DijAnswer answer;
  answer.path = std::move(sp.path);
  answer.distance = sp.distance;
  SPAUTH_ASSIGN_OR_RETURN(answer.subgraph,
                          ads_->network.ProveTuples(ws.ball.nodes));
  return answer;
}

void DijAnswer::Serialize(ByteWriter* out) const {
  out->WriteU32(static_cast<uint32_t>(path.nodes.size()));
  for (NodeId v : path.nodes) {
    out->WriteU32(v);
  }
  out->WriteF64(distance);
  subgraph.Serialize(out);
}

Result<DijAnswer> DijAnswer::Deserialize(ByteReader* in) {
  DijAnswer answer;
  SPAUTH_RETURN_IF_ERROR(DeserializeInto(in, &answer));
  return answer;
}

Status DijAnswer::DeserializeInto(ByteReader* in, DijAnswer* out) {
  uint32_t path_len = 0;
  SPAUTH_RETURN_IF_ERROR(in->ReadU32(&path_len));
  if (path_len == 0 || path_len > in->remaining() / 4) {
    return Status::Malformed("bad path length");
  }
  out->path.nodes.resize(path_len);
  for (uint32_t i = 0; i < path_len; ++i) {
    SPAUTH_RETURN_IF_ERROR(in->ReadU32(&out->path.nodes[i]));
  }
  SPAUTH_RETURN_IF_ERROR(in->ReadF64(&out->distance));
  return TupleSetProof::DeserializeInto(in, &out->subgraph);
}

VerifyOutcome VerifyDijAnswer(const RsaPublicKey& owner_key,
                              const Certificate& cert, const Query& query,
                              const DijAnswer& answer) {
  VerifyWorkspace ws;
  return VerifyDijAnswer(owner_key, cert, query, answer, ws);
}

VerifyOutcome VerifyDijAnswer(const RsaPublicKey& owner_key,
                              const Certificate& cert, const Query& query,
                              const DijAnswer& answer, VerifyWorkspace& ws) {
  if ((!ws.cert_preauthenticated && !VerifyCertificate(owner_key, cert)) ||
      cert.params.method != MethodKind::kDij) {
    return VerifyOutcome::Reject(VerifyFailure::kBadCertificate,
                                 "certificate invalid or wrong method");
  }
  // The proof must be shaped by the certified tree parameters; otherwise a
  // provider could substitute a weaker tree.
  const MerkleSubsetProof& mp = answer.subgraph.proof;
  if (mp.num_leaves != cert.params.num_network_leaves ||
      mp.fanout != cert.params.fanout || mp.alg != cert.params.alg) {
    return VerifyOutcome::Reject(VerifyFailure::kMalformedProof,
                                 "proof shape disagrees with certificate");
  }
  if (Status s = answer.subgraph.VerifyAgainstRoot(cert.network_root,
                                                   ws.merkle,
                                                   &ws.leaf_scratch);
      !s.ok()) {
    return VerifyOutcome::Reject(
        s.code() == StatusCode::kVerificationFailed
            ? VerifyFailure::kRootMismatch
            : VerifyFailure::kMalformedProof,
        s.message());
  }
  if (Status s = answer.subgraph.IndexInto(cert.params.num_network_leaves,
                                           &ws.index);
      !s.ok()) {
    return VerifyOutcome::Reject(VerifyFailure::kMalformedProof, s.message());
  }
  if (!(answer.distance > 0) || !std::isfinite(answer.distance)) {
    return VerifyOutcome::Reject(VerifyFailure::kDistanceMismatch,
                                 "claimed distance must be positive");
  }
  VerifyOutcome path_check =
      CheckPathAgainstTuples(ws.index, query, answer.path, answer.distance,
                             &ws.path_scratch);
  if (!path_check.accepted) {
    return path_check;
  }
  // Re-run Dijkstra over the subgraph: completeness + optimality.
  SubgraphSearchOutcome search = DijkstraOverTuples(
      ws.index, query.source, query.target, answer.distance, ws.search);
  switch (search.code) {
    case SubgraphSearchOutcome::Code::kMissingTuple:
      return VerifyOutcome::Reject(
          VerifyFailure::kIncompleteSubgraph,
          "subgraph proof is missing a required tuple");
    case SubgraphSearchOutcome::Code::kTargetNotReached:
      return VerifyOutcome::Reject(
          VerifyFailure::kDistanceMismatch,
          "claimed distance is not realized in the verified subgraph");
    case SubgraphSearchOutcome::Code::kBadTupleData:
      return VerifyOutcome::Reject(VerifyFailure::kMalformedProof,
                                   "tuple carries unexpected data");
    case SubgraphSearchOutcome::Code::kOk:
      break;
  }
  if (search.distance < answer.distance - VerifySlack(answer.distance)) {
    return VerifyOutcome::Reject(
        VerifyFailure::kNotShortest,
        "a shorter path exists in the verified subgraph");
  }
  if (search.distance > answer.distance + VerifySlack(answer.distance)) {
    return VerifyOutcome::Reject(VerifyFailure::kDistanceMismatch,
                                 "subgraph distance exceeds the claim");
  }
  return VerifyOutcome::Accept();
}

}  // namespace spauth
