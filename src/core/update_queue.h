// UpdateQueue — the coalescing owner queue in front of snapshot rotations.
//
// Every rotation costs a copy-on-write clone walk plus one RSA signature,
// so an owner that rotates per arriving update pays the fixed cost K times
// for K updates. This queue absorbs an ordered stream of mixed weight and
// structural updates and releases them as BATCHES: a flush drains the
// buffer in arrival order, split into maximal same-kind runs (weight runs
// feed ApplyEdgeWeightUpdates, structural runs feed ApplyStructuralUpdates,
// each run = one rotation = one signature). A storm of K updates collapses
// into at most ceil(K / max_batch) rotations — the coalescing ratio
// (flushed ops per rotation) is the win, the staleness lag (age of the
// oldest buffered op at flush time) is the price.
//
// Two triggers bound that price:
//   - count: the buffer reaching `max_batch` ops requests a flush;
//   - staleness: the oldest buffered op aging past `max_staleness_micros`
//     requests a flush (the bounded-staleness knob — 0 disables it and the
//     queue coalesces purely by count).
// The queue never reads a clock: callers pass `now_micros` into every
// entry point, so tests and benchmarks drive it with a synthetic clock and
// replay deterministically.
//
// The queue is externally synchronized — it holds no lock of its own.
// ShardedEngine wraps each per-group instance in a mutex; a single-owner
// benchmark drives it from one thread. A failed flush keeps the failed
// run and everything behind it buffered (already-applied runs ahead of it
// are gone — they rotated), so a retry resumes exactly where the fault
// hit, preserving arrival order.
#ifndef SPAUTH_CORE_UPDATE_QUEUE_H_
#define SPAUTH_CORE_UPDATE_QUEUE_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace spauth {

struct UpdateQueueOptions {
  /// Count trigger: a buffer of this many ops requests a flush. Also the
  /// upper bound on any single rotation's batch size.
  size_t max_batch = 64;
  /// Staleness trigger: the oldest buffered op aging past this requests a
  /// flush. 0 disables the time trigger (coalesce by count only).
  uint64_t max_staleness_micros = 0;
};

struct UpdateQueueStats {
  uint64_t enqueued = 0;        // ops accepted (weight + structural)
  uint64_t flushes = 0;         // Flush calls that drained at least one op
  uint64_t rotations = 0;       // same-kind runs applied (one signature each)
  uint64_t flushed_ops = 0;     // ops drained into rotations
  uint64_t max_lag_micros = 0;  // worst age of the oldest op at flush (gauge)

  /// Ops absorbed per rotation — the queue's reason to exist. > 1 means
  /// the queue saved signatures; == 1 means every op rotated alone.
  double CoalescingRatio() const {
    return rotations == 0
               ? 0.0
               : static_cast<double>(flushed_ops) /
                     static_cast<double>(rotations);
  }
};

class UpdateQueue {
 public:
  /// A weight run drains into one ApplyEdgeWeightUpdates rotation, a
  /// structural run into one ApplyStructuralUpdates rotation.
  using WeightFlushFn =
      std::function<Status(std::span<const EdgeWeightUpdate>)>;
  using StructuralFlushFn =
      std::function<Status(std::span<const StructuralUpdate>)>;

  explicit UpdateQueue(const UpdateQueueOptions& options)
      : options_(options) {
    if (options_.max_batch == 0) {
      options_.max_batch = 1;  // a zero batch could never flush
    }
  }

  /// Buffers one op; returns true when a trigger now requests a flush.
  bool EnqueueWeight(const EdgeWeightUpdate& update, uint64_t now_micros) {
    pending_.push_back(Pending{false, update, StructuralUpdate{}, now_micros});
    ++stats_.enqueued;
    return ShouldFlush(now_micros);
  }

  bool EnqueueStructural(const StructuralUpdate& op, uint64_t now_micros) {
    pending_.push_back(Pending{true, EdgeWeightUpdate{}, op, now_micros});
    ++stats_.enqueued;
    return ShouldFlush(now_micros);
  }

  /// True when either trigger fires: the buffer holds max_batch ops, or
  /// the oldest buffered op has waited max_staleness_micros.
  bool ShouldFlush(uint64_t now_micros) const {
    if (pending_.empty()) {
      return false;
    }
    if (pending_.size() >= options_.max_batch) {
      return true;
    }
    return options_.max_staleness_micros != 0 &&
           now_micros - pending_.front().enqueued_micros >=
               options_.max_staleness_micros;
  }

  size_t pending() const { return pending_.size(); }
  const UpdateQueueOptions& options() const { return options_; }
  const UpdateQueueStats& stats() const { return stats_; }

  /// Drains the whole buffer in arrival order as maximal same-kind runs of
  /// at most max_batch ops each. A failed run stays buffered (with
  /// everything behind it) and its error returns; runs already applied
  /// before the fault are rotated and booked. The lag gauge records the
  /// age of the oldest op drained by this call.
  Status Flush(uint64_t now_micros, const WeightFlushFn& flush_weights,
               const StructuralFlushFn& flush_structural) {
    if (pending_.empty()) {
      return Status::Ok();
    }
    const uint64_t lag = now_micros - pending_.front().enqueued_micros;
    bool drained_any = false;
    while (!pending_.empty()) {
      // The run: a maximal same-kind prefix, capped at max_batch so one
      // flush never exceeds the rotation size the owner asked for.
      const bool structural = pending_.front().structural;
      size_t run = 1;
      while (run < pending_.size() && run < options_.max_batch &&
             pending_[run].structural == structural) {
        ++run;
      }
      Status applied;
      if (structural) {
        structural_run_.clear();
        for (size_t i = 0; i < run; ++i) {
          structural_run_.push_back(pending_[i].structural_op);
        }
        applied = flush_structural(structural_run_);
      } else {
        weight_run_.clear();
        for (size_t i = 0; i < run; ++i) {
          weight_run_.push_back(pending_[i].weight);
        }
        applied = flush_weights(weight_run_);
      }
      if (!applied.ok()) {
        // The failed run keeps its place at the front; the next flush
        // retries it before anything newer.
        if (drained_any) {
          ++stats_.flushes;
          stats_.max_lag_micros = std::max(stats_.max_lag_micros, lag);
        }
        return applied;
      }
      pending_.erase(pending_.begin(),
                     pending_.begin() + static_cast<ptrdiff_t>(run));
      ++stats_.rotations;
      stats_.flushed_ops += run;
      drained_any = true;
    }
    ++stats_.flushes;
    stats_.max_lag_micros = std::max(stats_.max_lag_micros, lag);
    return Status::Ok();
  }

 private:
  struct Pending {
    bool structural = false;
    EdgeWeightUpdate weight;
    StructuralUpdate structural_op;
    uint64_t enqueued_micros = 0;
  };

  UpdateQueueOptions options_;
  std::deque<Pending> pending_;
  UpdateQueueStats stats_;
  // Run scratch, reused across flushes.
  std::vector<EdgeWeightUpdate> weight_run_;
  std::vector<StructuralUpdate> structural_run_;
};

}  // namespace spauth

#endif  // SPAUTH_CORE_UPDATE_QUEUE_H_
