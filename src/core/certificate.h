// The data owner's signed certificate: method parameters plus the ADS
// root digests.
//
// The paper signs the Merkle root(s); in a real deployment the verification
// parameters (hash algorithm, fanout, quantization increment lambda, cell
// layout, ...) must be authenticated too, otherwise a malicious provider
// could present a proof under weaker parameters. The certificate therefore
// signs H(params || network_root || distance_root) with the owner's RSA
// key. For HYP it additionally carries the per-cell node counts, which let
// the client check that a cell's tuple set is *complete* (dropping a border
// node would otherwise inflate the verified distance).
#ifndef SPAUTH_CORE_CERTIFICATE_H_
#define SPAUTH_CORE_CERTIFICATE_H_

#include <cstdint>
#include <vector>

#include "crypto/digest.h"
#include "crypto/rsa.h"
#include "graph/ordering.h"
#include "util/byte_buffer.h"
#include "util/status.h"

namespace spauth {

/// The four verification methods of the paper.
enum class MethodKind : uint8_t {
  kDij = 1,   // Dijkstra subgraph verification (Section IV-A)
  kFull = 2,  // fully materialized distances (Section IV-B)
  kLdm = 3,   // landmark-based verification (Section V-A)
  kHyp = 4,   // hyper-graph verification (Section V-B)
};

std::string_view ToString(MethodKind kind);
Result<MethodKind> ParseMethodKind(uint8_t wire);

struct MethodParams {
  MethodKind method = MethodKind::kDij;
  /// Monotone ADS version, bumped by owner-side updates. Freshness
  /// enforcement (e.g. "accept only version >= N") is an out-of-band
  /// policy; the signature binds the version to the roots either way.
  uint32_t version = 0;
  HashAlgorithm alg = HashAlgorithm::kSha1;
  uint32_t fanout = 2;
  NodeOrdering ordering = NodeOrdering::kHilbert;  // informational
  uint32_t num_network_leaves = 0;

  // FULL and HYP: the distance Merkle B-tree.
  bool has_distance_tree = false;
  uint32_t num_distance_leaves = 0;
  uint32_t distance_fanout = 0;

  // LDM.
  bool has_landmarks = false;
  uint32_t num_landmarks = 0;
  double lambda = 0;  // quantization increment (clients compute bounds)

  // HYP.
  bool has_cells = false;
  uint32_t num_cells = 0;
  std::vector<uint32_t> cell_counts;  // node count per cell (completeness)

  void Serialize(ByteWriter* out) const;
  static Result<MethodParams> Deserialize(ByteReader* in);
  /// Decodes into `out`, reusing its cell-count capacity and resetting
  /// optional fields the wire layout omits (so a reused `out` equals a
  /// freshly decoded value). Deserialize is a thin wrapper.
  static Status DeserializeInto(ByteReader* in, MethodParams* out);
};

struct Certificate {
  MethodParams params;
  Digest network_root;
  Digest distance_root;  // empty when !params.has_distance_tree
  std::vector<uint8_t> signature;

  /// The digest the owner signs.
  Digest BodyDigest() const;

  void Serialize(ByteWriter* out) const;
  static Result<Certificate> Deserialize(ByteReader* in);
  /// Decodes into `out`, reusing vector capacity (hot clients decode a
  /// certificate per wire message). Deserialize is a thin wrapper.
  static Status DeserializeInto(ByteReader* in, Certificate* out);
  size_t SerializedSize() const;
};

/// Owner side: assembles and signs a certificate.
Result<Certificate> MakeCertificate(const RsaKeyPair& keys,
                                    MethodParams params, Digest network_root,
                                    Digest distance_root);

/// Client side: true iff the signature verifies under the owner's key.
bool VerifyCertificate(const RsaPublicKey& owner_key,
                       const Certificate& cert);

}  // namespace spauth

#endif  // SPAUTH_CORE_CERTIFICATE_H_
