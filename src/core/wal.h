// Update write-ahead log — the durable half of the owner's rotation path.
//
// Every ApplyEdgeWeightUpdates batch is appended here (one CRC-framed
// record, flushed to stable storage) BEFORE the rotation publishes, so a
// crash at any point of the rotation loses at most work the caller was
// never told succeeded:
//
//   crash before the append      the batch simply never happened;
//   crash mid-append (torn tail) replay detects the torn record and stops
//                                at the last whole one;
//   crash after append, before   the batch is durable although the crashed
//   the publish                  process never served it — replay re-drives
//                                it, and deterministic signing (RSA PKCS#1
//                                v1.5) reproduces the exact certificate the
//                                uncrashed rotation would have published.
//
// Records carry the base version they apply on top of, so replay after a
// snapshot skips the prefix the snapshot already absorbed and detects
// gaps (a WAL that starts beyond the snapshot's version is data loss, not
// a torn tail). See src/util/crc32.h for the record framing and
// src/core/snapshot_store.h for the checkpoint side.
#ifndef SPAUTH_CORE_WAL_H_
#define SPAUTH_CORE_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/byte_buffer.h"
#include "util/status.h"

namespace spauth {

/// One durable update batch: the certificate version it applies on top of
/// plus the edge re-weightings, in application order.
struct WalRecord {
  uint32_t base_version = 0;
  std::vector<EdgeWeightUpdate> updates;

  void Serialize(ByteWriter* out) const;
  static Status DeserializeInto(ByteReader* in, WalRecord* out);
};

/// What a recovery read of the log found.
struct WalReplay {
  std::vector<WalRecord> records;  // the clean prefix, in append order
  /// True when a torn/corrupt record ended the scan. Records before the
  /// tear are in `records` either way; crash recovery accepts a torn tail
  /// (it is exactly what a crash mid-append leaves), scrubbing does not.
  bool torn_tail = false;
  /// File prefix covered by the clean records (a repair truncates here).
  size_t valid_bytes = 0;
};

/// Append-only CRC-per-record log over one file. Not thread-safe: the
/// engine's rotation lock already serializes writers.
class Wal {
 public:
  /// Opens (creating if absent) the log at `path` for appending.
  static Result<Wal> Open(std::string path);

  Wal(Wal&& other) noexcept;
  Wal& operator=(Wal&& other) noexcept;
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;
  ~Wal();

  /// Appends one framed record and flushes it to stable storage before
  /// returning. Fail points: "wal/append" fires before any byte is
  /// written (a crash before the append — the record does not exist);
  /// "wal/fsync" fires after a *prefix* of the record reaches the file
  /// but before the flush barrier (the crash that tears the tail record —
  /// replay must stop at the previous record).
  Status Append(const WalRecord& record);

  /// Truncates the log to empty — called after a successful snapshot
  /// write makes every logged record redundant (see
  /// SnapshotStore::Checkpoint, which pairs the two). Fail point
  /// "wal/reset" fires before the truncate: the crash that leaves a full
  /// log next to a snapshot that already absorbed it.
  Status Reset();

  const std::string& path() const { return path_; }
  /// Records successfully appended through this handle.
  uint64_t appended_records() const { return appended_; }

  /// Reads the clean record prefix of the log at `path`. A missing file
  /// is an empty log (not an error). The scan stops at the first torn or
  /// corrupt record (WalReplay::torn_tail); everything before it is
  /// returned. Fail point "wal/fsync" does not apply here — reading has
  /// no durability seam.
  static Result<WalReplay> Read(const std::string& path);

 private:
  Wal(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  std::string path_;
  int fd_ = -1;
  uint64_t appended_ = 0;
};

}  // namespace spauth

#endif  // SPAUTH_CORE_WAL_H_
