// Update write-ahead log — the durable half of the owner's rotation path.
//
// Every ApplyEdgeWeightUpdates batch is appended here (one CRC-framed
// record, flushed to stable storage) BEFORE the rotation publishes, so a
// crash at any point of the rotation loses at most work the caller was
// never told succeeded:
//
//   crash before the append      the batch simply never happened;
//   crash mid-append (torn tail) replay detects the torn record and stops
//                                at the last whole one;
//   crash after append, before   the batch is durable although the crashed
//   the publish                  process never served it — replay re-drives
//                                it, and deterministic signing (RSA PKCS#1
//                                v1.5) reproduces the exact certificate the
//                                uncrashed rotation would have published.
//
// Records carry the base version they apply on top of, so replay after a
// snapshot skips the prefix the snapshot already absorbed and detects
// gaps (a WAL that starts beyond the snapshot's version is data loss, not
// a torn tail). Records are TYPED: the payload leads with a kind byte
// (edge re-weighting vs structural batch), so a replayer that meets a
// record it cannot interpret refuses with kDataLoss instead of
// mis-parsing it — an unknown kind is never silently skipped and never
// mistaken for a torn tail (a tear breaks the CRC; a CRC-clean frame was
// written whole). See src/util/crc32.h for the record framing and
// src/core/snapshot_store.h for the checkpoint side.
#ifndef SPAUTH_CORE_WAL_H_
#define SPAUTH_CORE_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/byte_buffer.h"
#include "util/status.h"

namespace spauth {

/// The record-type tag leading every WAL payload. Values are part of the
/// on-disk format — never renumber, only append.
enum class WalRecordKind : uint8_t {
  kEdgeWeights = 1,  // a batch of edge re-weightings
  kStructural = 2,   // a batch of structural ops (add/remove edge, add vertex)
};

/// One durable update batch: the certificate version it applies on top of
/// plus the ops, in application order. Exactly one of `updates` /
/// `structural` is populated, selected by `kind`.
struct WalRecord {
  WalRecordKind kind = WalRecordKind::kEdgeWeights;
  uint32_t base_version = 0;
  std::vector<EdgeWeightUpdate> updates;      // kind == kEdgeWeights
  std::vector<StructuralUpdate> structural;   // kind == kStructural

  /// Ops in the record — the version delta it drives (replay arithmetic
  /// treats weight and structural batches uniformly through this).
  size_t Count() const {
    return kind == WalRecordKind::kEdgeWeights ? updates.size()
                                               : structural.size();
  }

  void Serialize(ByteWriter* out) const;
  /// kDataLoss when the record leads with a kind this build cannot
  /// interpret (or a structural op kind it cannot); Malformed for byte-
  /// level decode failures inside a known kind.
  static Status DeserializeInto(ByteReader* in, WalRecord* out);
};

/// What a recovery read of the log found.
struct WalReplay {
  std::vector<WalRecord> records;  // the clean prefix, in append order
  /// True when a torn record at the END of the log stopped the scan.
  /// Records before the tear are in `records` either way; crash recovery
  /// accepts a torn tail (it is exactly what a crash mid-append leaves),
  /// scrubbing does not. A corrupt record with further bytes behind it is
  /// NOT a torn tail — Read fails kDataLoss instead (see Read).
  bool torn_tail = false;
  /// File prefix covered by the clean records (a repair truncates here).
  size_t valid_bytes = 0;
};

/// Append-only CRC-per-record log over one file. Not thread-safe: the
/// engine's rotation lock already serializes writers.
class Wal {
 public:
  /// Opens (creating if absent) the log at `path` for appending.
  static Result<Wal> Open(std::string path);

  Wal(Wal&& other) noexcept;
  Wal& operator=(Wal&& other) noexcept;
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;
  ~Wal();

  /// Appends one framed record and flushes it to stable storage before
  /// returning. Fail points: "wal/append" fires before any byte is
  /// written (a crash before the append — the record does not exist);
  /// "wal/fsync" fires after a *prefix* of the record reaches the file
  /// but before the flush barrier (the crash that tears the tail record —
  /// replay must stop at the previous record).
  Status Append(const WalRecord& record);

  /// Truncates the log to empty — called after a successful snapshot
  /// write makes every logged record redundant (see
  /// SnapshotStore::Checkpoint, which pairs the two). Fail point
  /// "wal/reset" fires before the truncate: the crash that leaves a full
  /// log next to a snapshot that already absorbed it.
  Status Reset();

  const std::string& path() const { return path_; }
  /// Records successfully appended through this handle.
  uint64_t appended_records() const { return appended_; }

  /// Reads the clean record prefix of the log at `path`. A missing file
  /// is an empty log (not an error). A torn record at the END of the log
  /// stops the scan (WalReplay::torn_tail) and everything before it is
  /// returned — that is the crash-mid-append shape. Two corruption shapes
  /// are NOT accepted and fail kDataLoss instead of silently dropping
  /// committed records:
  ///   - a corrupt record followed by further bytes (mid-log damage — a
  ///     crash tear can only live at the tail);
  ///   - a CRC-clean record whose payload cannot be interpreted (unknown
  ///     record kind, or bytes that do not decode — the frame was written
  ///     whole, so this is damage or a format the build does not know).
  /// Fail point "wal/fsync" does not apply here — reading has no
  /// durability seam.
  static Result<WalReplay> Read(const std::string& path);

 private:
  Wal(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  std::string path_;
  int fd_ = -1;
  uint64_t appended_ = 0;
};

}  // namespace spauth

#endif  // SPAUTH_CORE_WAL_H_
