#include "core/engine.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <unordered_set>

#include "core/dij.h"
#include "core/full.h"
#include "core/hyp.h"
#include "core/ldm.h"
#include "core/updates.h"
#include "core/verify_workspace.h"
#include "graph/dijkstra.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace spauth {

std::string_view ToString(TamperKind kind) {
  switch (kind) {
    case TamperKind::kSuboptimalPath:
      return "suboptimal-path";
    case TamperKind::kTamperWeight:
      return "tamper-weight";
    case TamperKind::kDropTuple:
      return "drop-tuple";
    case TamperKind::kForgeDistanceValue:
      return "forge-distance";
    case TamperKind::kBogusSignature:
      return "bogus-signature";
    case TamperKind::kPhantomEdge:
      return "phantom-edge";
  }
  return "?";
}

Result<ProofBundle> MethodEngine::Answer(const Query& query) const {
  SearchWorkspace ws;
  return Answer(query, ws);
}

Result<ProofBundle> MethodEngine::Answer(const Query& query,
                                         SearchWorkspace& ws) const {
  if (cache_ == nullptr) {
    return AnswerUncached(query, ws);
  }
  SPAUTH_ASSIGN_OR_RETURN(std::shared_ptr<const ProofBundle> shared,
                          AnswerShared(query, ws));
  return *shared;
}

Result<std::shared_ptr<const ProofBundle>> MethodEngine::AnswerShared(
    const Query& query) const {
  SearchWorkspace ws;
  return AnswerShared(query, ws);
}

Result<std::shared_ptr<const ProofBundle>> MethodEngine::AnswerShared(
    const Query& query, SearchWorkspace& ws) const {
  if (cache_ == nullptr) {
    SPAUTH_ASSIGN_OR_RETURN(ProofBundle bundle, AnswerUncached(query, ws));
    return std::make_shared<const ProofBundle>(std::move(bundle));
  }
  // Bundles certify the ADS roots, so a version change (owner update)
  // invalidates everything cached so far.
  const uint32_t version = certificate().params.version;
  if (cache_version_.load(std::memory_order_acquire) != version) {
    cache_->Clear();
    cache_version_.store(version, std::memory_order_release);
  }
  const uint64_t key =
      (static_cast<uint64_t>(query.source) << 32) | query.target;
  if (std::shared_ptr<const ProofBundle> hit = cache_->Lookup(key)) {
    return hit;
  }
  SPAUTH_ASSIGN_OR_RETURN(ProofBundle bundle, AnswerUncached(query, ws));
  auto shared = std::make_shared<const ProofBundle>(std::move(bundle));
  cache_->Insert(key, shared, shared->bytes.size());
  return shared;
}

VerifyOutcome MethodEngine::Verify(const Query& query,
                                   const ProofBundle& bundle) const {
  VerifyWorkspace ws;
  return Verify(query, bundle, ws);
}

Status MethodEngine::ApplyEdgeWeightUpdate(Graph* /*g*/,
                                           const RsaKeyPair& /*keys*/,
                                           NodeId /*u*/, NodeId /*v*/,
                                           double /*new_weight*/) {
  return Status::FailedPrecondition(
      "method hints require a rebuild on weight changes");
}

void MethodEngine::EnableProofCache(size_t capacity, size_t shards) {
  ProofCache<ProofBundle>::Options options;
  options.capacity = capacity;
  options.shards = shards;
  cache_ = std::make_unique<ProofCache<ProofBundle>>(options);
  cache_version_.store(certificate().params.version,
                       std::memory_order_release);
}

ProofCacheStats MethodEngine::proof_cache_stats() const {
  return cache_ == nullptr ? ProofCacheStats{} : cache_->GetStats();
}

void MethodEngine::InvalidateProofCache() const {
  if (cache_ != nullptr) {
    cache_->Clear();
    cache_version_.store(certificate().params.version,
                         std::memory_order_release);
  }
}

std::vector<Result<ProofBundle>> MethodEngine::AnswerBatch(
    std::span<const Query> queries, size_t num_threads) const {
  std::vector<Result<ProofBundle>> results(
      queries.size(), Status::Internal("query not answered"));
  if (queries.empty()) {
    return results;
  }
  if (num_threads == 0) {
    num_threads = ThreadPool::DefaultThreads(queries.size());
  }
  num_threads = std::min(num_threads, queries.size());
  if (num_threads <= 1) {
    SearchWorkspace ws;
    for (size_t i = 0; i < queries.size(); ++i) {
      results[i] = Answer(queries[i], ws);
    }
    return results;
  }
  ThreadPool pool(num_threads);
  std::atomic<size_t> next{0};
  for (size_t w = 0; w < num_threads; ++w) {
    pool.Submit([this, &queries, &results, &next] {
      SearchWorkspace ws;  // per-worker scratch, hot for the whole stream
      for (size_t i = next.fetch_add(1); i < queries.size();
           i = next.fetch_add(1)) {
        results[i] = Answer(queries[i], ws);
      }
    });
  }
  pool.Wait();
  return results;
}

namespace {

/// Wire layout shared by all engines: certificate followed by the answer.
/// `cert_size` is the (per-engine constant) certificate wire size; together
/// with Answer::SerializedSize() it pre-sizes the buffer so assembly never
/// reallocates.
template <typename Answer>
std::vector<uint8_t> EncodeBundle(const Certificate& cert,
                                  const Answer& answer, size_t cert_size) {
  ByteWriter w;
  const size_t expected = cert_size + answer.SerializedSize();
  w.Reserve(expected);
  cert.Serialize(&w);
  answer.Serialize(&w);
  assert(w.size() == expected && "SerializedSize out of sync with Serialize");
  return w.TakeBytes();
}

/// Decodes a bundle into workspace scratch (certificate + answer), reusing
/// the scratch capacity across bundles.
template <typename Answer>
Status DecodeBundleInto(std::span<const uint8_t> bytes, Certificate* cert,
                        Answer* answer) {
  ByteReader r(bytes);
  SPAUTH_RETURN_IF_ERROR(Certificate::DeserializeInto(&r, cert));
  SPAUTH_RETURN_IF_ERROR(Answer::DeserializeInto(&r, answer));
  if (!r.AtEnd()) {
    return Status::Malformed("trailing bytes after answer");
  }
  return Status::Ok();
}

/// Flips one bit inside the certificate's signature region of a bundle.
/// The signature is the last length-prefixed field of the certificate,
/// which is the first structure in the bundle — rather than tracking
/// offsets, re-encode with a corrupted certificate.
template <typename Answer>
std::vector<uint8_t> EncodeWithBogusSignature(Certificate cert,
                                              const Answer& answer) {
  if (!cert.signature.empty()) {
    cert.signature[cert.signature.size() / 2] ^= 0x40;
  }
  return EncodeBundle(cert, answer, cert.SerializedSize());
}

/// Computes a strictly-longer alternative path by deleting one edge of the
/// true shortest path at a time. NotFound if every alternative ties or the
/// target becomes unreachable.
Result<PathSearchResult> FindSuboptimalPath(const Graph& g,
                                            const Query& query) {
  PathSearchResult best = DijkstraShortestPath(g, query.source, query.target);
  if (!best.reachable) {
    return Status::NotFound("unreachable");
  }
  for (size_t hop = 1; hop < best.path.nodes.size(); ++hop) {
    const NodeId u = best.path.nodes[hop - 1];
    const NodeId v = best.path.nodes[hop];
    // Rebuild the graph without edge (u, v).
    GraphBuilder builder;
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      builder.AddNode(g.x(n), g.y(n));
    }
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      for (const Edge& e : g.Neighbors(n)) {
        if (n < e.to && !(n == std::min(u, v) && e.to == std::max(u, v))) {
          Status s = builder.AddEdge(n, e.to, e.weight);
          if (!s.ok()) {
            return s;
          }
        }
      }
    }
    auto reduced = builder.Build();
    if (!reduced.ok()) {
      return reduced.status();
    }
    PathSearchResult alt =
        DijkstraShortestPath(reduced.value(), query.source, query.target);
    if (alt.reachable &&
        alt.distance > best.distance + 10 * VerifySlack(best.distance)) {
      return alt;
    }
  }
  return Status::NotFound("no strictly longer alternative path");
}

/// Picks a tuple inside `proof` (by node id) and perturbs one of its edge
/// weights without re-hashing — the tampered-weight attack.
Status CorruptOneTupleWeight(TupleSetProof* proof) {
  for (ExtendedTuple& t : proof->tuples) {
    if (!t.neighbors.empty()) {
      t.neighbors[0].weight += 1.0;
      return Status::Ok();
    }
  }
  return Status::NotFound("no tuple with neighbors to corrupt");
}

// ---------------------------------------------------------------------------
// DIJ engine
// ---------------------------------------------------------------------------

class DijEngine : public MethodEngine {
 public:
  DijEngine(const Graph* g, DijAds ads, RsaPublicKey owner_key,
            SpAlgorithm algosp)
      : g_(g),
        ads_(std::move(ads)),
        provider_(g, &ads_, algosp),
        owner_key_(std::move(owner_key)),
        cert_size_(ads_.certificate.SerializedSize()) {}

  MethodKind kind() const override { return MethodKind::kDij; }
  size_t storage_bytes() const override { return ads_.network.StorageBytes(); }
  const Certificate& certificate() const override { return ads_.certificate; }

  Result<ProofBundle> AnswerUncached(const Query& query,
                                     SearchWorkspace& ws) const override {
    SPAUTH_ASSIGN_OR_RETURN(DijAnswer answer, provider_.Answer(query, ws));
    return Finish(answer);
  }

  Status ApplyEdgeWeightUpdate(Graph* g, const RsaKeyPair& keys, NodeId u,
                               NodeId v, double new_weight) override {
    if (g != g_) {
      return Status::InvalidArgument(
          "graph does not match the engine's graph");
    }
    SPAUTH_RETURN_IF_ERROR(UpdateEdgeWeight(g, &ads_, keys, u, v,
                                            new_weight));
    cert_size_ = ads_.certificate.SerializedSize();
    InvalidateProofCache();
    return Status::Ok();
  }

  Result<ProofBundle> TamperedAnswer(const Query& query,
                                     TamperKind kind) const override {
    switch (kind) {
      case TamperKind::kSuboptimalPath: {
        SPAUTH_ASSIGN_OR_RETURN(PathSearchResult alt,
                                FindSuboptimalPath(*g_, query));
        // "Honest" proof generation relative to the longer distance.
        BallResult ball = DijkstraBall(*g_, query.source,
                                       alt.distance +
                                           ProviderSlack(alt.distance));
        DijAnswer answer;
        answer.path = std::move(alt.path);
        answer.distance = alt.distance;
        SPAUTH_ASSIGN_OR_RETURN(answer.subgraph,
                                ads_.network.ProveTuples(ball.nodes));
        return Finish(answer);
      }
      case TamperKind::kTamperWeight: {
        SPAUTH_ASSIGN_OR_RETURN(DijAnswer answer, provider_.Answer(query));
        SPAUTH_RETURN_IF_ERROR(CorruptOneTupleWeight(&answer.subgraph));
        return Finish(answer);
      }
      case TamperKind::kDropTuple: {
        SPAUTH_ASSIGN_OR_RETURN(DijAnswer answer, provider_.Answer(query));
        BallResult ball = DijkstraBall(*g_, query.source,
                                       answer.distance +
                                           ProviderSlack(answer.distance));
        std::unordered_set<NodeId> path_nodes(answer.path.nodes.begin(),
                                              answer.path.nodes.end());
        NodeId victim = kInvalidNode;
        std::vector<NodeId> kept;
        for (size_t i = 0; i < ball.nodes.size(); ++i) {
          const NodeId v = ball.nodes[i];
          if (victim == kInvalidNode && !path_nodes.contains(v) &&
              ball.dist[i] > 0 && ball.dist[i] < answer.distance * 0.8) {
            victim = v;  // interior node the client's Dijkstra must expand
            continue;
          }
          kept.push_back(v);
        }
        if (victim == kInvalidNode) {
          return Status::NotFound("no droppable interior tuple");
        }
        SPAUTH_ASSIGN_OR_RETURN(answer.subgraph,
                                ads_.network.ProveTuples(kept));
        return Finish(answer);
      }
      case TamperKind::kBogusSignature: {
        SPAUTH_ASSIGN_OR_RETURN(DijAnswer answer, provider_.Answer(query));
        ProofBundle bundle = MakeBundle(answer);
        bundle.bytes = EncodeWithBogusSignature(ads_.certificate, answer);
        return bundle;
      }
      case TamperKind::kPhantomEdge: {
        SPAUTH_ASSIGN_OR_RETURN(DijAnswer answer, provider_.Answer(query));
        answer.path.nodes = {query.source, query.target};
        return Finish(answer);
      }
      case TamperKind::kForgeDistanceValue:
        return Status::FailedPrecondition("DIJ has no distance entries");
    }
    return Status::Internal("unhandled tamper kind");
  }

  using MethodEngine::Verify;
  VerifyOutcome Verify(const Query& query, const ProofBundle& bundle,
                       VerifyWorkspace& ws) const override {
    if (Status s = DecodeBundleInto<DijAnswer>(bundle.bytes, &ws.cert,
                                               &ws.dij);
        !s.ok()) {
      return VerifyOutcome::Reject(VerifyFailure::kMalformedProof,
                                   s.message());
    }
    return VerifyDijAnswer(owner_key_, ws.cert, query, ws.dij, ws);
  }

 private:
  ProofBundle MakeBundle(const DijAnswer& answer) const {
    ProofBundle bundle;
    bundle.path = answer.path;
    bundle.distance = answer.distance;
    bundle.bytes = EncodeBundle(ads_.certificate, answer, cert_size_);
    bundle.stats.sp_bytes = answer.subgraph.TupleBytes();
    bundle.stats.t_bytes = answer.subgraph.IntegrityBytes() + cert_size_;
    bundle.stats.sp_items = answer.subgraph.tuples.size();
    bundle.stats.t_items = answer.subgraph.proof.num_digests();
    return bundle;
  }
  Result<ProofBundle> Finish(const DijAnswer& answer) const {
    return MakeBundle(answer);
  }

  const Graph* g_;
  DijAds ads_;
  DijProvider provider_;
  RsaPublicKey owner_key_;
  size_t cert_size_;
};

// ---------------------------------------------------------------------------
// FULL engine
// ---------------------------------------------------------------------------

class FullEngine : public MethodEngine {
 public:
  FullEngine(const Graph* g, FullAds ads, RsaPublicKey owner_key,
            SpAlgorithm algosp)
      : g_(g),
        ads_(std::move(ads)),
        provider_(g, &ads_, algosp),
        owner_key_(std::move(owner_key)),
        cert_size_(ads_.certificate.SerializedSize()) {}

  MethodKind kind() const override { return MethodKind::kFull; }
  size_t storage_bytes() const override {
    return ads_.network.StorageBytes() + ads_.distances.StorageBytes();
  }
  const Certificate& certificate() const override { return ads_.certificate; }

  Result<ProofBundle> AnswerUncached(const Query& query,
                                     SearchWorkspace& ws) const override {
    SPAUTH_ASSIGN_OR_RETURN(FullAnswer answer, provider_.Answer(query, ws));
    return MakeBundle(answer);
  }

  Result<ProofBundle> TamperedAnswer(const Query& query,
                                     TamperKind kind) const override {
    switch (kind) {
      case TamperKind::kSuboptimalPath: {
        SPAUTH_ASSIGN_OR_RETURN(PathSearchResult alt,
                                FindSuboptimalPath(*g_, query));
        SPAUTH_ASSIGN_OR_RETURN(FullAnswer answer, provider_.Answer(query));
        answer.distance = alt.distance;
        answer.path = alt.path;
        SPAUTH_ASSIGN_OR_RETURN(answer.path_tuples,
                                ads_.network.ProveTuples(answer.path.nodes));
        return MakeBundle(answer);
      }
      case TamperKind::kTamperWeight: {
        SPAUTH_ASSIGN_OR_RETURN(FullAnswer answer, provider_.Answer(query));
        SPAUTH_RETURN_IF_ERROR(CorruptOneTupleWeight(&answer.path_tuples));
        return MakeBundle(answer);
      }
      case TamperKind::kDropTuple: {
        SPAUTH_ASSIGN_OR_RETURN(FullAnswer answer, provider_.Answer(query));
        if (answer.path.nodes.size() < 3) {
          return Status::NotFound("path too short to drop a tuple");
        }
        std::vector<NodeId> kept = answer.path.nodes;
        kept.erase(kept.begin() + static_cast<ptrdiff_t>(kept.size() / 2));
        SPAUTH_ASSIGN_OR_RETURN(answer.path_tuples,
                                ads_.network.ProveTuples(kept));
        return MakeBundle(answer);
      }
      case TamperKind::kForgeDistanceValue: {
        SPAUTH_ASSIGN_OR_RETURN(FullAnswer answer, provider_.Answer(query));
        answer.distance_proof.entries[0].value *= 1.1;
        return MakeBundle(answer);
      }
      case TamperKind::kBogusSignature: {
        SPAUTH_ASSIGN_OR_RETURN(FullAnswer answer, provider_.Answer(query));
        auto bundle = MakeBundle(answer);
        if (!bundle.ok()) {
          return bundle;
        }
        bundle.value().bytes =
            EncodeWithBogusSignature(ads_.certificate, answer);
        return bundle;
      }
      case TamperKind::kPhantomEdge: {
        SPAUTH_ASSIGN_OR_RETURN(FullAnswer answer, provider_.Answer(query));
        answer.path.nodes = {query.source, query.target};
        return MakeBundle(answer);
      }
    }
    return Status::Internal("unhandled tamper kind");
  }

  using MethodEngine::Verify;
  VerifyOutcome Verify(const Query& query, const ProofBundle& bundle,
                       VerifyWorkspace& ws) const override {
    if (Status s = DecodeBundleInto<FullAnswer>(bundle.bytes, &ws.cert,
                                                &ws.full);
        !s.ok()) {
      return VerifyOutcome::Reject(VerifyFailure::kMalformedProof,
                                   s.message());
    }
    return VerifyFullAnswer(owner_key_, ws.cert, query, ws.full, ws);
  }

 private:
  Result<ProofBundle> MakeBundle(const FullAnswer& answer) const {
    ProofBundle bundle;
    bundle.path = answer.path;
    bundle.distance = answer.distance;
    bundle.bytes = EncodeBundle(ads_.certificate, answer, cert_size_);
    // Gamma_S: the authenticated distance tuple and its B-tree digests.
    bundle.stats.sp_bytes = answer.distance_proof.SerializedSize();
    bundle.stats.sp_items = answer.distance_proof.entries.size() +
                            answer.distance_proof.tree_proof.num_digests();
    // Gamma_T: the path tuples and the network digests.
    bundle.stats.t_bytes = answer.path_tuples.TupleBytes() +
                           answer.path_tuples.IntegrityBytes() + cert_size_;
    bundle.stats.t_items = answer.path_tuples.tuples.size() +
                           answer.path_tuples.proof.num_digests();
    return bundle;
  }

  const Graph* g_;
  FullAds ads_;
  FullProvider provider_;
  RsaPublicKey owner_key_;
  size_t cert_size_;
};

// ---------------------------------------------------------------------------
// LDM engine
// ---------------------------------------------------------------------------

class LdmEngine : public MethodEngine {
 public:
  LdmEngine(const Graph* g, LdmAds ads, RsaPublicKey owner_key,
            SpAlgorithm algosp)
      : g_(g),
        ads_(std::move(ads)),
        provider_(g, &ads_, algosp),
        owner_key_(std::move(owner_key)),
        cert_size_(ads_.certificate.SerializedSize()) {}

  MethodKind kind() const override { return MethodKind::kLdm; }
  size_t storage_bytes() const override {
    return ads_.network.StorageBytes() + ads_.ref.size() * 12;
  }
  const Certificate& certificate() const override { return ads_.certificate; }

  Result<ProofBundle> AnswerUncached(const Query& query,
                                     SearchWorkspace& ws) const override {
    SPAUTH_ASSIGN_OR_RETURN(LdmAnswer answer, provider_.Answer(query, ws));
    return MakeBundle(answer);
  }

  Result<ProofBundle> TamperedAnswer(const Query& query,
                                     TamperKind kind) const override {
    switch (kind) {
      case TamperKind::kSuboptimalPath: {
        SPAUTH_ASSIGN_OR_RETURN(PathSearchResult alt,
                                FindSuboptimalPath(*g_, query));
        // Re-issue the provider's proof against the inflated distance by
        // answering a fake "claim": rebuild Gamma_S around alt.distance.
        SPAUTH_ASSIGN_OR_RETURN(LdmAnswer honest, provider_.Answer(query));
        LdmAnswer answer;
        answer.path = std::move(alt.path);
        answer.distance = alt.distance;
        // A superset proof (radius alt.distance) keeps the Merkle part
        // valid while the path is suboptimal.
        BallResult ball = DijkstraBall(*g_, query.source,
                                       alt.distance +
                                           ProviderSlack(alt.distance));
        std::vector<NodeId> nodes = ball.nodes;
        const size_t direct = nodes.size();
        for (size_t i = 0; i < direct; ++i) {
          for (const Edge& e : g_->Neighbors(nodes[i])) {
            nodes.push_back(e.to);
          }
        }
        const size_t with_neighbors = nodes.size();
        for (size_t i = 0; i < with_neighbors; ++i) {
          nodes.push_back(ads_.ref[nodes[i]]);
        }
        nodes.push_back(query.source);
        nodes.push_back(query.target);
        nodes.push_back(ads_.ref[query.source]);
        nodes.push_back(ads_.ref[query.target]);
        SPAUTH_ASSIGN_OR_RETURN(answer.subgraph,
                                ads_.network.ProveTuples(nodes));
        (void)honest;
        return MakeBundle(answer);
      }
      case TamperKind::kTamperWeight: {
        SPAUTH_ASSIGN_OR_RETURN(LdmAnswer answer, provider_.Answer(query));
        SPAUTH_RETURN_IF_ERROR(CorruptOneTupleWeight(&answer.subgraph));
        return MakeBundle(answer);
      }
      case TamperKind::kDropTuple: {
        SPAUTH_ASSIGN_OR_RETURN(LdmAnswer answer, provider_.Answer(query));
        if (answer.path.nodes.size() < 3) {
          return Status::NotFound("path too short to drop a tuple");
        }
        // Drop a middle path node from the proof (it is certainly needed).
        const NodeId victim =
            answer.path.nodes[answer.path.nodes.size() / 2];
        std::vector<NodeId> kept;
        for (const ExtendedTuple& t : answer.subgraph.tuples) {
          if (t.id != victim) {
            kept.push_back(t.id);
          }
        }
        SPAUTH_ASSIGN_OR_RETURN(answer.subgraph,
                                ads_.network.ProveTuples(kept));
        return MakeBundle(answer);
      }
      case TamperKind::kBogusSignature: {
        SPAUTH_ASSIGN_OR_RETURN(LdmAnswer answer, provider_.Answer(query));
        auto bundle = MakeBundle(answer);
        if (!bundle.ok()) {
          return bundle;
        }
        bundle.value().bytes =
            EncodeWithBogusSignature(ads_.certificate, answer);
        return bundle;
      }
      case TamperKind::kPhantomEdge: {
        SPAUTH_ASSIGN_OR_RETURN(LdmAnswer answer, provider_.Answer(query));
        answer.path.nodes = {query.source, query.target};
        return MakeBundle(answer);
      }
      case TamperKind::kForgeDistanceValue:
        return Status::FailedPrecondition("LDM has no distance entries");
    }
    return Status::Internal("unhandled tamper kind");
  }

  using MethodEngine::Verify;
  VerifyOutcome Verify(const Query& query, const ProofBundle& bundle,
                       VerifyWorkspace& ws) const override {
    if (Status s = DecodeBundleInto<LdmAnswer>(bundle.bytes, &ws.cert,
                                               &ws.ldm);
        !s.ok()) {
      return VerifyOutcome::Reject(VerifyFailure::kMalformedProof,
                                   s.message());
    }
    return VerifyLdmAnswer(owner_key_, ws.cert, query, ws.ldm, ws);
  }

 private:
  Result<ProofBundle> MakeBundle(const LdmAnswer& answer) const {
    ProofBundle bundle;
    bundle.path = answer.path;
    bundle.distance = answer.distance;
    bundle.bytes = EncodeBundle(ads_.certificate, answer, cert_size_);
    bundle.stats.sp_bytes = answer.subgraph.TupleBytes();
    bundle.stats.t_bytes = answer.subgraph.IntegrityBytes() + cert_size_;
    bundle.stats.sp_items = answer.subgraph.tuples.size();
    bundle.stats.t_items = answer.subgraph.proof.num_digests();
    return bundle;
  }

  const Graph* g_;
  LdmAds ads_;
  LdmProvider provider_;
  RsaPublicKey owner_key_;
  size_t cert_size_;
};

// ---------------------------------------------------------------------------
// HYP engine
// ---------------------------------------------------------------------------

class HypEngine : public MethodEngine {
 public:
  HypEngine(const Graph* g, HypAds ads, RsaPublicKey owner_key,
            SpAlgorithm algosp)
      : g_(g),
        ads_(std::move(ads)),
        provider_(g, &ads_, algosp),
        owner_key_(std::move(owner_key)),
        cert_size_(ads_.certificate.SerializedSize()) {}

  MethodKind kind() const override { return MethodKind::kHyp; }
  size_t storage_bytes() const override {
    return ads_.network.StorageBytes() + ads_.distances.StorageBytes();
  }
  const Certificate& certificate() const override { return ads_.certificate; }

  Result<ProofBundle> AnswerUncached(const Query& query,
                                     SearchWorkspace& ws) const override {
    SPAUTH_ASSIGN_OR_RETURN(HypAnswer answer, provider_.Answer(query, ws));
    return MakeBundle(answer);
  }

  Result<ProofBundle> TamperedAnswer(const Query& query,
                                     TamperKind kind) const override {
    switch (kind) {
      case TamperKind::kSuboptimalPath: {
        SPAUTH_ASSIGN_OR_RETURN(PathSearchResult alt,
                                FindSuboptimalPath(*g_, query));
        SPAUTH_ASSIGN_OR_RETURN(HypAnswer answer, provider_.Answer(query));
        answer.distance = alt.distance;
        answer.path = alt.path;
        // Tuple proof must still cover the (new) path nodes.
        std::vector<NodeId> nodes;
        for (const ExtendedTuple& t : answer.tuples.tuples) {
          nodes.push_back(t.id);
        }
        nodes.insert(nodes.end(), alt.path.nodes.begin(),
                     alt.path.nodes.end());
        SPAUTH_ASSIGN_OR_RETURN(answer.tuples,
                                ads_.network.ProveTuples(nodes));
        return MakeBundle(answer);
      }
      case TamperKind::kTamperWeight: {
        SPAUTH_ASSIGN_OR_RETURN(HypAnswer answer, provider_.Answer(query));
        SPAUTH_RETURN_IF_ERROR(CorruptOneTupleWeight(&answer.tuples));
        return MakeBundle(answer);
      }
      case TamperKind::kDropTuple: {
        SPAUTH_ASSIGN_OR_RETURN(HypAnswer answer, provider_.Answer(query));
        // Drop a source-cell tuple that is not on the path: the client's
        // cell count check must catch it.
        const uint32_t cell_s = ads_.hiti.partition().CellOf(query.source);
        std::unordered_set<NodeId> path_nodes(answer.path.nodes.begin(),
                                              answer.path.nodes.end());
        NodeId victim = kInvalidNode;
        std::vector<NodeId> kept;
        for (const ExtendedTuple& t : answer.tuples.tuples) {
          if (victim == kInvalidNode && t.cell == cell_s &&
              !path_nodes.contains(t.id) && t.id != query.source) {
            victim = t.id;
            continue;
          }
          kept.push_back(t.id);
        }
        if (victim == kInvalidNode) {
          return Status::NotFound("no droppable cell tuple");
        }
        SPAUTH_ASSIGN_OR_RETURN(answer.tuples,
                                ads_.network.ProveTuples(kept));
        return MakeBundle(answer);
      }
      case TamperKind::kForgeDistanceValue: {
        SPAUTH_ASSIGN_OR_RETURN(HypAnswer answer, provider_.Answer(query));
        if (!answer.has_hyper_edges || answer.hyper_edges.entries.empty()) {
          return Status::NotFound("no hyper-edge entries to forge");
        }
        answer.hyper_edges.entries[0].value *= 1.1;
        return MakeBundle(answer);
      }
      case TamperKind::kBogusSignature: {
        SPAUTH_ASSIGN_OR_RETURN(HypAnswer answer, provider_.Answer(query));
        auto bundle = MakeBundle(answer);
        if (!bundle.ok()) {
          return bundle;
        }
        bundle.value().bytes =
            EncodeWithBogusSignature(ads_.certificate, answer);
        return bundle;
      }
      case TamperKind::kPhantomEdge: {
        SPAUTH_ASSIGN_OR_RETURN(HypAnswer answer, provider_.Answer(query));
        answer.path.nodes = {query.source, query.target};
        return MakeBundle(answer);
      }
    }
    return Status::Internal("unhandled tamper kind");
  }

  using MethodEngine::Verify;
  VerifyOutcome Verify(const Query& query, const ProofBundle& bundle,
                       VerifyWorkspace& ws) const override {
    if (Status s = DecodeBundleInto<HypAnswer>(bundle.bytes, &ws.cert,
                                               &ws.hyp);
        !s.ok()) {
      return VerifyOutcome::Reject(VerifyFailure::kMalformedProof,
                                   s.message());
    }
    return VerifyHypAnswer(owner_key_, ws.cert, query, ws.hyp, ws);
  }

 private:
  Result<ProofBundle> MakeBundle(const HypAnswer& answer) const {
    ProofBundle bundle;
    bundle.path = answer.path;
    bundle.distance = answer.distance;
    bundle.bytes = EncodeBundle(ads_.certificate, answer, cert_size_);
    // Gamma_S: tuples + hyper-edge entries; Gamma_T: all digests + indices.
    const size_t hyper_entry_bytes =
        answer.has_hyper_edges ? 4 + answer.hyper_edges.entries.size() * 20
                               : 0;
    const size_t hyper_digest_bytes =
        answer.has_hyper_edges
            ? answer.hyper_edges.tree_proof.SerializedSize()
            : 0;
    bundle.stats.sp_bytes = answer.tuples.TupleBytes() + hyper_entry_bytes;
    bundle.stats.t_bytes = answer.tuples.IntegrityBytes() +
                           hyper_digest_bytes + cert_size_;
    bundle.stats.sp_items =
        answer.tuples.tuples.size() +
        (answer.has_hyper_edges ? answer.hyper_edges.entries.size() : 0);
    bundle.stats.t_items =
        answer.tuples.proof.num_digests() +
        (answer.has_hyper_edges ? answer.hyper_edges.tree_proof.num_digests()
                                : 0);
    return bundle;
  }

  const Graph* g_;
  HypAds ads_;
  HypProvider provider_;
  RsaPublicKey owner_key_;
  size_t cert_size_;
};

}  // namespace

Result<std::unique_ptr<MethodEngine>> MakeEngine(const Graph& g,
                                                 const EngineOptions& options,
                                                 const RsaKeyPair& keys) {
  WallTimer timer;
  std::unique_ptr<MethodEngine> engine;
  switch (options.method) {
    case MethodKind::kDij: {
      DijOptions o;
      o.ordering = options.ordering;
      o.fanout = options.fanout;
      o.alg = options.alg;
      o.seed = options.seed;
      SPAUTH_ASSIGN_OR_RETURN(DijAds ads, BuildDijAds(g, o, keys));
      engine = std::make_unique<DijEngine>(&g, std::move(ads),
                                           keys.public_key(),
                                           options.provider_algorithm);
      break;
    }
    case MethodKind::kFull: {
      FullOptions o;
      o.ordering = options.ordering;
      o.fanout = options.fanout;
      o.distance_fanout = options.distance_fanout;
      o.alg = options.alg;
      o.use_floyd_warshall = options.full_use_floyd_warshall;
      o.seed = options.seed;
      SPAUTH_ASSIGN_OR_RETURN(FullAds ads, BuildFullAds(g, o, keys));
      engine = std::make_unique<FullEngine>(&g, std::move(ads),
                                            keys.public_key(),
                                            options.provider_algorithm);
      break;
    }
    case MethodKind::kLdm: {
      LdmOptions o;
      o.ordering = options.ordering;
      o.fanout = options.fanout;
      o.alg = options.alg;
      o.num_landmarks = options.num_landmarks;
      o.quantization_bits = options.quantization_bits;
      o.compression_xi = options.compression_xi;
      o.strategy = options.landmark_strategy;
      o.seed = options.seed;
      SPAUTH_ASSIGN_OR_RETURN(LdmAds ads, BuildLdmAds(g, o, keys));
      engine = std::make_unique<LdmEngine>(&g, std::move(ads),
                                           keys.public_key(),
                                           options.provider_algorithm);
      break;
    }
    case MethodKind::kHyp: {
      HypOptions o;
      o.ordering = options.ordering;
      o.fanout = options.fanout;
      o.distance_fanout = options.distance_fanout;
      o.alg = options.alg;
      o.num_cells = options.num_cells;
      o.seed = options.seed;
      SPAUTH_ASSIGN_OR_RETURN(HypAds ads, BuildHypAds(g, o, keys));
      engine = std::make_unique<HypEngine>(&g, std::move(ads),
                                           keys.public_key(),
                                           options.provider_algorithm);
      break;
    }
  }
  // Record the owner's offline construction time (Figures 8c, 9b, 12b, 13b).
  engine->set_construction_seconds(timer.ElapsedSeconds());
  if (options.enable_proof_cache) {
    engine->EnableProofCache(options.proof_cache_capacity,
                             options.proof_cache_shards);
  }
  return engine;
}

}  // namespace spauth
