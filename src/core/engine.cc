#include "core/engine.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <unordered_set>

#include "core/dij.h"
#include "core/full.h"
#include "core/hyp.h"
#include "core/ldm.h"
#include "core/snapshot_store.h"
#include "core/updates.h"
#include "core/wal.h"
#include "core/verify_workspace.h"
#include "graph/dijkstra.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace spauth {

std::string_view ToString(TamperKind kind) {
  switch (kind) {
    case TamperKind::kSuboptimalPath:
      return "suboptimal-path";
    case TamperKind::kTamperWeight:
      return "tamper-weight";
    case TamperKind::kDropTuple:
      return "drop-tuple";
    case TamperKind::kForgeDistanceValue:
      return "forge-distance";
    case TamperKind::kBogusSignature:
      return "bogus-signature";
    case TamperKind::kPhantomEdge:
      return "phantom-edge";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Snapshot plumbing
// ---------------------------------------------------------------------------

/// shared_ptr deleter for published snapshots: the last in-flight reader
/// (or the engine replacing/destroying the snapshot) triggers the drain
/// hook before the state is freed.
struct MethodEngine::StateRetirer {
  const MethodEngine* engine;
  void operator()(const EngineState* state) const {
    engine->OnStateDrained(*state);
    delete state;
  }
};

MethodEngine::MethodEngine(const EngineOptions& options)
    : cache_enabled_(options.enable_proof_cache),
      cache_capacity_(options.proof_cache_capacity),
      cache_shards_(options.proof_cache_shards) {}

MethodEngine::~MethodEngine() = default;

void MethodEngine::PublishState(std::unique_ptr<EngineState> state) {
  state->epoch = epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (cache_enabled_ && state->cache == nullptr) {
    ProofCache<ProofBundle>::Options options;
    options.capacity = cache_capacity_;
    options.shards = cache_shards_;
    state->cache = std::make_shared<ProofCache<ProofBundle>>(options);
  }
  live_states_.fetch_add(1, std::memory_order_acq_rel);
  std::shared_ptr<const EngineState> published(state.release(),
                                               StateRetirer{this});
  // The slot's release/acquire pairing guarantees a reader that acquires
  // the new snapshot sees every write that built it (cloned graph/ADS,
  // re-signed certificate, fresh cache).
  slot_.Store(std::move(published));
}

void MethodEngine::OnStateDrained(const EngineState& state) const {
  if (state.cache != nullptr) {
    const ProofCacheStats s = state.cache->GetStats();
    std::lock_guard<std::mutex> lock(retired_mu_);
    retired_.hits += s.hits;
    retired_.misses += s.misses;
    retired_.insertions += s.insertions;
    retired_.evictions += s.evictions;
    // Rotation retired the resident entries wholesale; account them as
    // cleared so the books conserve across snapshot lifetimes.
    retired_.cleared += s.cleared + s.entries;
    retired_.hit_bytes += s.hit_bytes;
  }
  live_states_.fetch_sub(1, std::memory_order_acq_rel);
}

Result<uint32_t> MethodEngine::ApplyEdgeWeightUpdates(
    const RsaKeyPair& /*keys*/, std::span<const EdgeWeightUpdate> updates) {
  if (updates.empty()) {
    // An empty batch is a no-op for every method, per the header contract.
    return CurrentState()->certificate.params.version;
  }
  return Status::FailedPrecondition(
      "method hints require a rebuild on weight changes");
}

Result<uint32_t> MethodEngine::ApplyEdgeWeightUpdate(const RsaKeyPair& keys,
                                                     NodeId u, NodeId v,
                                                     double new_weight) {
  const EdgeWeightUpdate update{u, v, new_weight};
  return ApplyEdgeWeightUpdates(keys, {&update, 1});
}

Result<uint32_t> MethodEngine::ApplyEdgeWeightUpdatesUnsigned(
    std::span<const EdgeWeightUpdate> updates) {
  if (updates.empty()) {
    return CurrentState()->certificate.params.version;
  }
  return Status::FailedPrecondition(
      "method hints require a rebuild on weight changes");
}

Result<uint32_t> MethodEngine::ApplyStructuralUpdates(
    const RsaKeyPair& /*keys*/, std::span<const StructuralUpdate> ops) {
  if (ops.empty()) {
    return CurrentState()->certificate.params.version;
  }
  return Status::FailedPrecondition(
      "method hints require a rebuild on structural changes");
}

Result<uint32_t> MethodEngine::ApplyStructuralUpdate(
    const RsaKeyPair& keys, const StructuralUpdate& op) {
  return ApplyStructuralUpdates(keys, {&op, 1});
}

Result<uint32_t> MethodEngine::ApplyStructuralUpdatesUnsigned(
    std::span<const StructuralUpdate> ops) {
  if (ops.empty()) {
    return CurrentState()->certificate.params.version;
  }
  return Status::FailedPrecondition(
      "method hints require a rebuild on structural changes");
}

Status MethodEngine::SerializeDurableState(ByteWriter* /*out*/) const {
  return Status::FailedPrecondition(
      "durable snapshots are implemented for DIJ only");
}

Result<uint32_t> MethodEngine::AdoptStateFrom(const MethodEngine& /*source*/) {
  return Status::FailedPrecondition(
      "state adoption is implemented for DIJ only");
}

ProofCacheStats MethodEngine::proof_cache_stats() const {
  ProofCacheStats stats;
  {
    std::lock_guard<std::mutex> lock(retired_mu_);
    stats = retired_;
  }
  const std::shared_ptr<const EngineState> state = CurrentState();
  if (state->cache != nullptr) {
    const ProofCacheStats live = state->cache->GetStats();
    stats.hits += live.hits;
    stats.misses += live.misses;
    stats.insertions += live.insertions;
    stats.evictions += live.evictions;
    stats.cleared += live.cleared;
    stats.hit_bytes += live.hit_bytes;
    stats.entries += live.entries;
  }
  return stats;
}

// ---------------------------------------------------------------------------
// Serving
// ---------------------------------------------------------------------------

Result<ProofBundle> MethodEngine::Answer(const Query& query) const {
  SearchWorkspace ws;
  return Answer(query, ws);
}

Result<ProofBundle> MethodEngine::Answer(const Query& query,
                                         SearchWorkspace& ws) const {
  const std::shared_ptr<const EngineState> state = CurrentState();
  return AnswerOn(*state, query, ws);
}

Result<ProofBundle> MethodEngine::AnswerOn(const EngineState& state,
                                           const Query& query,
                                           SearchWorkspace& ws) const {
  if (state.cache == nullptr) {
    return AnswerUncached(state, query, ws);
  }
  SPAUTH_ASSIGN_OR_RETURN(std::shared_ptr<const ProofBundle> shared,
                          AnswerOnState(state, query, ws));
  return *shared;
}

Result<std::shared_ptr<const ProofBundle>> MethodEngine::AnswerShared(
    const Query& query) const {
  SearchWorkspace ws;
  return AnswerShared(query, ws);
}

Result<std::shared_ptr<const ProofBundle>> MethodEngine::AnswerShared(
    const Query& query, SearchWorkspace& ws) const {
  // One acquire pins the whole snapshot for this query: graph, ADS,
  // certificate and cache stay mutually consistent even if an owner
  // update publishes a newer snapshot mid-answer.
  const std::shared_ptr<const EngineState> state = CurrentState();
  return AnswerOnState(*state, query, ws);
}

Result<std::shared_ptr<const ProofBundle>> MethodEngine::AnswerShared(
    const Query& query, SearchWorkspace& ws,
    std::shared_ptr<const EngineState>* snap) const {
  slot_.Refresh(snap);
  return AnswerOnState(**snap, query, ws);
}

Result<std::shared_ptr<const ProofBundle>> MethodEngine::AnswerOnState(
    const EngineState& state, const Query& query, SearchWorkspace& ws) const {
  SPAUTH_FAILPOINT_RETURN("engine/answer");
  if (state.cache == nullptr) {
    SPAUTH_FAILPOINT_RETURN("engine/assemble");
    SPAUTH_ASSIGN_OR_RETURN(ProofBundle bundle,
                            AnswerUncached(state, query, ws));
    return std::make_shared<const ProofBundle>(std::move(bundle));
  }
  // Cached bundles certify this snapshot's root; no cross-snapshot
  // invalidation is needed because the cache lives and dies with the
  // snapshot.
  const uint64_t key =
      (static_cast<uint64_t>(query.source) << 32) | query.target;
  if (std::shared_ptr<const ProofBundle> hit = state.cache->Lookup(key)) {
    return hit;
  }
  SPAUTH_FAILPOINT_RETURN("engine/assemble");
  SPAUTH_ASSIGN_OR_RETURN(ProofBundle bundle, AnswerUncached(state, query, ws));
  auto shared = std::make_shared<const ProofBundle>(std::move(bundle));
  // A fired cache_insert point drops only the memoization; the answer is
  // served either way.
  if (!SPAUTH_FAILPOINT_TRIGGERED("engine/cache_insert")) {
    state.cache->Insert(key, shared, shared->bytes.size());
  }
  return shared;
}

VerifyOutcome MethodEngine::Verify(const Query& query,
                                   const ProofBundle& bundle) const {
  VerifyWorkspace ws;
  return Verify(query, bundle, ws);
}

std::vector<Result<ProofBundle>> MethodEngine::AnswerBatch(
    std::span<const Query> queries, size_t num_threads) const {
  std::vector<Result<ProofBundle>> results(
      queries.size(), Status::Internal("query not answered"));
  if (queries.empty()) {
    return results;
  }
  if (num_threads == 0) {
    num_threads = ThreadPool::DefaultThreads(queries.size());
  }
  num_threads = std::min(num_threads, queries.size());
  if (num_threads <= 1) {
    SearchWorkspace ws;
    std::shared_ptr<const EngineState> snap;
    for (size_t i = 0; i < queries.size(); ++i) {
      slot_.Refresh(&snap);  // one acquire load unless a rotation landed
      results[i] = AnswerOn(*snap, queries[i], ws);
    }
    return results;
  }
  ThreadPool pool(num_threads);
  std::atomic<size_t> next{0};
  for (size_t w = 0; w < num_threads; ++w) {
    pool.Submit([this, &queries, &results, &next] {
      SearchWorkspace ws;  // per-worker scratch, hot for the whole stream
      std::shared_ptr<const EngineState> snap;  // per-worker snapshot pin
      for (size_t i = next.fetch_add(1); i < queries.size();
           i = next.fetch_add(1)) {
        slot_.Refresh(&snap);
        results[i] = AnswerOn(*snap, queries[i], ws);
      }
    });
  }
  pool.Wait();
  return results;
}

namespace {

/// Wire layout shared by all engines: certificate followed by the answer.
/// `cert_size` is the (per-snapshot constant) certificate wire size;
/// together with Answer::SerializedSize() it pre-sizes the buffer so
/// assembly never reallocates.
template <typename Answer>
std::vector<uint8_t> EncodeBundle(const Certificate& cert,
                                  const Answer& answer, size_t cert_size) {
  ByteWriter w;
  const size_t expected = cert_size + answer.SerializedSize();
  w.Reserve(expected);
  cert.Serialize(&w);
  answer.Serialize(&w);
  assert(w.size() == expected && "SerializedSize out of sync with Serialize");
  return w.TakeBytes();
}

/// Decodes a bundle into workspace scratch (certificate + answer), reusing
/// the scratch capacity across bundles.
template <typename Answer>
Status DecodeBundleInto(std::span<const uint8_t> bytes, Certificate* cert,
                        Answer* answer) {
  ByteReader r(bytes);
  SPAUTH_RETURN_IF_ERROR(Certificate::DeserializeInto(&r, cert));
  SPAUTH_RETURN_IF_ERROR(Answer::DeserializeInto(&r, answer));
  if (!r.AtEnd()) {
    return Status::Malformed("trailing bytes after answer");
  }
  return Status::Ok();
}

/// Flips one bit inside the certificate's signature region of a bundle.
/// The signature is the last length-prefixed field of the certificate,
/// which is the first structure in the bundle — rather than tracking
/// offsets, re-encode with a corrupted certificate.
template <typename Answer>
std::vector<uint8_t> EncodeWithBogusSignature(Certificate cert,
                                              const Answer& answer) {
  if (!cert.signature.empty()) {
    cert.signature[cert.signature.size() / 2] ^= 0x40;
  }
  return EncodeBundle(cert, answer, cert.SerializedSize());
}

/// Computes a strictly-longer alternative path by deleting one edge of the
/// true shortest path at a time. NotFound if every alternative ties or the
/// target becomes unreachable.
Result<PathSearchResult> FindSuboptimalPath(const Graph& g,
                                            const Query& query) {
  PathSearchResult best = DijkstraShortestPath(g, query.source, query.target);
  if (!best.reachable) {
    return Status::NotFound("unreachable");
  }
  for (size_t hop = 1; hop < best.path.nodes.size(); ++hop) {
    const NodeId u = best.path.nodes[hop - 1];
    const NodeId v = best.path.nodes[hop];
    // Rebuild the graph without edge (u, v).
    GraphBuilder builder;
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      builder.AddNode(g.x(n), g.y(n));
    }
    for (NodeId n = 0; n < g.num_nodes(); ++n) {
      for (const Edge& e : g.Neighbors(n)) {
        if (n < e.to && !(n == std::min(u, v) && e.to == std::max(u, v))) {
          Status s = builder.AddEdge(n, e.to, e.weight);
          if (!s.ok()) {
            return s;
          }
        }
      }
    }
    auto reduced = builder.Build();
    if (!reduced.ok()) {
      return reduced.status();
    }
    PathSearchResult alt =
        DijkstraShortestPath(reduced.value(), query.source, query.target);
    if (alt.reachable &&
        alt.distance > best.distance + 10 * VerifySlack(best.distance)) {
      return alt;
    }
  }
  return Status::NotFound("no strictly longer alternative path");
}

/// Picks a tuple inside `proof` (by node id) and perturbs one of its edge
/// weights without re-hashing — the tampered-weight attack.
Status CorruptOneTupleWeight(TupleSetProof* proof) {
  for (ExtendedTuple& t : proof->tuples) {
    if (!t.neighbors.empty()) {
      t.neighbors[0].weight += 1.0;
      return Status::Ok();
    }
  }
  return Status::NotFound("no tuple with neighbors to corrupt");
}

// ---------------------------------------------------------------------------
// DIJ engine
// ---------------------------------------------------------------------------

/// DIJ snapshot: the network ADS (its certificate mirrors
/// EngineState::certificate by construction).
struct DijState final : EngineState {
  explicit DijState(DijAds a) : ads(std::move(a)) {}
  DijAds ads;
};

class DijEngine : public MethodEngine {
 public:
  DijEngine(const EngineOptions& options,
            std::shared_ptr<const Graph> g, DijAds ads,
            RsaPublicKey owner_key)
      : MethodEngine(options),
        owner_key_(std::move(owner_key)),
        algosp_(options.provider_algorithm) {
    auto state = std::make_unique<DijState>(std::move(ads));
    state->graph = std::move(g);
    state->certificate = state->ads.certificate;
    state->cert_size = state->certificate.SerializedSize();
    PublishState(std::move(state));
  }

  MethodKind kind() const override { return MethodKind::kDij; }
  size_t storage_bytes() const override {
    return State()->ads.network.StorageBytes();
  }

  Result<ProofBundle> AnswerUncached(const EngineState& state,
                                     const Query& query,
                                     SearchWorkspace& ws) const override {
    const DijState& s = static_cast<const DijState&>(state);
    DijProvider provider(s.graph.get(), &s.ads, algosp_);
    SPAUTH_ASSIGN_OR_RETURN(DijAnswer answer, provider.Answer(query, ws));
    return MakeBundle(s, answer);
  }

  Result<uint32_t> ApplyEdgeWeightUpdates(
      const RsaKeyPair& keys,
      std::span<const EdgeWeightUpdate> updates) override {
    return ApplyUpdatesRotation(&keys, updates);
  }

  Result<uint32_t> ApplyEdgeWeightUpdatesUnsigned(
      std::span<const EdgeWeightUpdate> updates) override {
    return ApplyUpdatesRotation(nullptr, updates);
  }

  Result<uint32_t> ApplyStructuralUpdates(
      const RsaKeyPair& keys,
      std::span<const StructuralUpdate> ops) override {
    return ApplyStructuralRotation(&keys, ops);
  }

  Result<uint32_t> ApplyStructuralUpdatesUnsigned(
      std::span<const StructuralUpdate> ops) override {
    return ApplyStructuralRotation(nullptr, ops);
  }

  /// The rotation body shared by the signed and forest-mode (unsigned)
  /// update paths; `keys` == nullptr defers the certificate signature to
  /// the fleet layer's forest publish.
  Result<uint32_t> ApplyUpdatesRotation(
      const RsaKeyPair* keys, std::span<const EdgeWeightUpdate> updates) {
    std::unique_lock<std::mutex> rotation = LockForUpdate();
    const std::shared_ptr<const DijState> cur = State();
    if (updates.empty()) {
      return cur->certificate.params.version;  // nothing to absorb
    }
    // Copy-on-write rotation: the graph/ADS "clones" share every chunk
    // with the published snapshot (pointer spines only); absorbing the
    // batch path-copies just the touched adjacency blocks, tuple chunks
    // and Merkle path chunks, then signs ONCE at version + k. A failed
    // batch publishes nothing.
    size_t copied_bytes = 0;
    auto graph = std::make_shared<Graph>(*cur->graph);
    auto next = std::make_unique<DijState>(cur->ads);
    if (keys != nullptr) {
      SPAUTH_RETURN_IF_ERROR(spauth::ApplyEdgeWeightUpdates(
          graph.get(), &next->ads, *keys, updates, &copied_bytes));
    } else {
      SPAUTH_RETURN_IF_ERROR(spauth::ApplyEdgeWeightUpdatesUnsigned(
          graph.get(), &next->ads, updates, &copied_bytes));
    }
    next->graph = std::move(graph);
    next->certificate = next->ads.certificate;
    next->cert_size = next->certificate.SerializedSize();
    const uint32_t version = next->certificate.params.version;
    // Durability barrier: the batch reaches the write-ahead log (and the
    // disk) before anything can observe the new snapshot. A crash after
    // this line re-drives the batch on recovery; deterministic signing
    // reproduces the exact certificate built above.
    if (Wal* wal = attached_wal()) {
      WalRecord record;
      record.base_version = cur->certificate.params.version;
      record.updates.assign(updates.begin(), updates.end());
      SPAUTH_RETURN_IF_ERROR(wal->Append(record));
    }
    // Last fallible step before the publish: a fired point here discards
    // the fully-built clone and leaves the old snapshot serving.
    SPAUTH_FAILPOINT_RETURN("engine/publish");
    AddRotationCloneBytes(copied_bytes);
    PublishState(std::move(next));
    return version;
  }

  /// Structural twin of ApplyUpdatesRotation: same clone/WAL/publish
  /// discipline, except the clones grow or shrink — the CSR splices
  /// adjacency blocks, the ADS appends Merkle leaves for new vertices —
  /// and the WAL record carries the structural kind so recovery replays
  /// the exact op sequence.
  Result<uint32_t> ApplyStructuralRotation(
      const RsaKeyPair* keys, std::span<const StructuralUpdate> ops) {
    std::unique_lock<std::mutex> rotation = LockForUpdate();
    const std::shared_ptr<const DijState> cur = State();
    if (ops.empty()) {
      return cur->certificate.params.version;  // nothing to absorb
    }
    size_t copied_bytes = 0;
    auto graph = std::make_shared<Graph>(*cur->graph);
    auto next = std::make_unique<DijState>(cur->ads);
    if (keys != nullptr) {
      SPAUTH_RETURN_IF_ERROR(spauth::ApplyStructuralUpdates(
          graph.get(), &next->ads, *keys, ops, &copied_bytes));
    } else {
      SPAUTH_RETURN_IF_ERROR(spauth::ApplyStructuralUpdatesUnsigned(
          graph.get(), &next->ads, ops, &copied_bytes));
    }
    next->graph = std::move(graph);
    next->certificate = next->ads.certificate;
    next->cert_size = next->certificate.SerializedSize();
    const uint32_t version = next->certificate.params.version;
    if (Wal* wal = attached_wal()) {
      WalRecord record;
      record.kind = WalRecordKind::kStructural;
      record.base_version = cur->certificate.params.version;
      record.structural.assign(ops.begin(), ops.end());
      SPAUTH_RETURN_IF_ERROR(wal->Append(record));
    }
    SPAUTH_FAILPOINT_RETURN("engine/publish");
    AddRotationCloneBytes(copied_bytes);
    PublishState(std::move(next));
    return version;
  }

  Status SerializeDurableState(ByteWriter* out) const override {
    EncodeSnapshotPayload(State()->ads, out);
    return Status::Ok();
  }

  Result<uint32_t> AdoptStateFrom(const MethodEngine& source) override {
    if (source.kind() != MethodKind::kDij || &source == this) {
      return Status::FailedPrecondition(
          "state adoption requires a distinct DIJ sibling");
    }
    std::unique_lock<std::mutex> rotation = LockForUpdate();
    const auto src = std::static_pointer_cast<const DijState>(
        source.CurrentState());
    const std::shared_ptr<const DijState> cur = State();
    if (cur->certificate.params.version >= src->certificate.params.version) {
      return cur->certificate.params.version;  // already caught up
    }
    // The adopted snapshot shares the sibling's chunks outright — the same
    // structural sharing a rotation exploits, except nothing is copied but
    // the spines. The sibling's future rotations copy-on-write away from
    // these chunks, never through them.
    auto next = std::make_unique<DijState>(src->ads);
    next->graph = src->graph;
    next->certificate = next->ads.certificate;
    next->cert_size = next->certificate.SerializedSize();
    const uint32_t version = next->certificate.params.version;
    PublishState(std::move(next));
    return version;
  }

  Result<ProofBundle> TamperedAnswer(const Query& query,
                                     TamperKind kind) const override {
    const std::shared_ptr<const DijState> s = State();
    const Graph& g = *s->graph;
    DijProvider provider(s->graph.get(), &s->ads, algosp_);
    switch (kind) {
      case TamperKind::kSuboptimalPath: {
        SPAUTH_ASSIGN_OR_RETURN(PathSearchResult alt,
                                FindSuboptimalPath(g, query));
        // "Honest" proof generation relative to the longer distance.
        BallResult ball = DijkstraBall(g, query.source,
                                       alt.distance +
                                           ProviderSlack(alt.distance));
        DijAnswer answer;
        answer.path = std::move(alt.path);
        answer.distance = alt.distance;
        SPAUTH_ASSIGN_OR_RETURN(answer.subgraph,
                                s->ads.network.ProveTuples(ball.nodes));
        return MakeBundle(*s, answer);
      }
      case TamperKind::kTamperWeight: {
        SPAUTH_ASSIGN_OR_RETURN(DijAnswer answer, provider.Answer(query));
        SPAUTH_RETURN_IF_ERROR(CorruptOneTupleWeight(&answer.subgraph));
        return MakeBundle(*s, answer);
      }
      case TamperKind::kDropTuple: {
        SPAUTH_ASSIGN_OR_RETURN(DijAnswer answer, provider.Answer(query));
        BallResult ball = DijkstraBall(g, query.source,
                                       answer.distance +
                                           ProviderSlack(answer.distance));
        std::unordered_set<NodeId> path_nodes(answer.path.nodes.begin(),
                                              answer.path.nodes.end());
        NodeId victim = kInvalidNode;
        std::vector<NodeId> kept;
        for (size_t i = 0; i < ball.nodes.size(); ++i) {
          const NodeId v = ball.nodes[i];
          if (victim == kInvalidNode && !path_nodes.contains(v) &&
              ball.dist[i] > 0 && ball.dist[i] < answer.distance * 0.8) {
            victim = v;  // interior node the client's Dijkstra must expand
            continue;
          }
          kept.push_back(v);
        }
        if (victim == kInvalidNode) {
          return Status::NotFound("no droppable interior tuple");
        }
        SPAUTH_ASSIGN_OR_RETURN(answer.subgraph,
                                s->ads.network.ProveTuples(kept));
        return MakeBundle(*s, answer);
      }
      case TamperKind::kBogusSignature: {
        SPAUTH_ASSIGN_OR_RETURN(DijAnswer answer, provider.Answer(query));
        ProofBundle bundle = MakeBundle(*s, answer);
        bundle.bytes = EncodeWithBogusSignature(s->ads.certificate, answer);
        return bundle;
      }
      case TamperKind::kPhantomEdge: {
        SPAUTH_ASSIGN_OR_RETURN(DijAnswer answer, provider.Answer(query));
        answer.path.nodes = {query.source, query.target};
        return MakeBundle(*s, answer);
      }
      case TamperKind::kForgeDistanceValue:
        return Status::FailedPrecondition("DIJ has no distance entries");
    }
    return Status::Internal("unhandled tamper kind");
  }

  using MethodEngine::Verify;
  VerifyOutcome Verify(const Query& query, const ProofBundle& bundle,
                       VerifyWorkspace& ws) const override {
    if (Status s = DecodeBundleInto<DijAnswer>(bundle.bytes, &ws.cert,
                                               &ws.dij);
        !s.ok()) {
      return VerifyOutcome::Reject(VerifyFailure::kMalformedProof,
                                   s.message());
    }
    return VerifyDijAnswer(owner_key_, ws.cert, query, ws.dij, ws);
  }

 private:
  std::shared_ptr<const DijState> State() const {
    return std::static_pointer_cast<const DijState>(CurrentState());
  }

  ProofBundle MakeBundle(const DijState& s, const DijAnswer& answer) const {
    ProofBundle bundle;
    bundle.path = answer.path;
    bundle.distance = answer.distance;
    bundle.bytes = EncodeBundle(s.ads.certificate, answer, s.cert_size);
    bundle.stats.sp_bytes = answer.subgraph.TupleBytes();
    bundle.stats.t_bytes = answer.subgraph.IntegrityBytes() + s.cert_size;
    bundle.stats.sp_items = answer.subgraph.tuples.size();
    bundle.stats.t_items = answer.subgraph.proof.num_digests();
    return bundle;
  }

  RsaPublicKey owner_key_;
  SpAlgorithm algosp_;
};

// ---------------------------------------------------------------------------
// FULL engine
// ---------------------------------------------------------------------------

struct FullState final : EngineState {
  explicit FullState(FullAds a) : ads(std::move(a)) {}
  FullAds ads;
};

class FullEngine : public MethodEngine {
 public:
  FullEngine(const EngineOptions& options,
            std::shared_ptr<const Graph> g, FullAds ads,
            RsaPublicKey owner_key)
      : MethodEngine(options),
        owner_key_(std::move(owner_key)),
        algosp_(options.provider_algorithm) {
    auto state = std::make_unique<FullState>(std::move(ads));
    state->graph = std::move(g);
    state->certificate = state->ads.certificate;
    state->cert_size = state->certificate.SerializedSize();
    PublishState(std::move(state));
  }

  MethodKind kind() const override { return MethodKind::kFull; }
  size_t storage_bytes() const override {
    const std::shared_ptr<const FullState> s = State();
    return s->ads.network.StorageBytes() + s->ads.distances.StorageBytes();
  }

  Result<ProofBundle> AnswerUncached(const EngineState& state,
                                     const Query& query,
                                     SearchWorkspace& ws) const override {
    const FullState& s = static_cast<const FullState&>(state);
    FullProvider provider(s.graph.get(), &s.ads, algosp_);
    SPAUTH_ASSIGN_OR_RETURN(FullAnswer answer, provider.Answer(query, ws));
    return MakeBundle(s, answer);
  }

  Result<ProofBundle> TamperedAnswer(const Query& query,
                                     TamperKind kind) const override {
    const std::shared_ptr<const FullState> s = State();
    const Graph& g = *s->graph;
    FullProvider provider(s->graph.get(), &s->ads, algosp_);
    switch (kind) {
      case TamperKind::kSuboptimalPath: {
        SPAUTH_ASSIGN_OR_RETURN(PathSearchResult alt,
                                FindSuboptimalPath(g, query));
        SPAUTH_ASSIGN_OR_RETURN(FullAnswer answer, provider.Answer(query));
        answer.distance = alt.distance;
        answer.path = alt.path;
        SPAUTH_ASSIGN_OR_RETURN(
            answer.path_tuples,
            s->ads.network.ProveTuples(answer.path.nodes));
        return MakeBundle(*s, answer);
      }
      case TamperKind::kTamperWeight: {
        SPAUTH_ASSIGN_OR_RETURN(FullAnswer answer, provider.Answer(query));
        SPAUTH_RETURN_IF_ERROR(CorruptOneTupleWeight(&answer.path_tuples));
        return MakeBundle(*s, answer);
      }
      case TamperKind::kDropTuple: {
        SPAUTH_ASSIGN_OR_RETURN(FullAnswer answer, provider.Answer(query));
        if (answer.path.nodes.size() < 3) {
          return Status::NotFound("path too short to drop a tuple");
        }
        std::vector<NodeId> kept = answer.path.nodes;
        kept.erase(kept.begin() + static_cast<ptrdiff_t>(kept.size() / 2));
        SPAUTH_ASSIGN_OR_RETURN(answer.path_tuples,
                                s->ads.network.ProveTuples(kept));
        return MakeBundle(*s, answer);
      }
      case TamperKind::kForgeDistanceValue: {
        SPAUTH_ASSIGN_OR_RETURN(FullAnswer answer, provider.Answer(query));
        answer.distance_proof.entries[0].value *= 1.1;
        return MakeBundle(*s, answer);
      }
      case TamperKind::kBogusSignature: {
        SPAUTH_ASSIGN_OR_RETURN(FullAnswer answer, provider.Answer(query));
        auto bundle = MakeBundle(*s, answer);
        if (!bundle.ok()) {
          return bundle;
        }
        bundle.value().bytes =
            EncodeWithBogusSignature(s->ads.certificate, answer);
        return bundle;
      }
      case TamperKind::kPhantomEdge: {
        SPAUTH_ASSIGN_OR_RETURN(FullAnswer answer, provider.Answer(query));
        answer.path.nodes = {query.source, query.target};
        return MakeBundle(*s, answer);
      }
    }
    return Status::Internal("unhandled tamper kind");
  }

  using MethodEngine::Verify;
  VerifyOutcome Verify(const Query& query, const ProofBundle& bundle,
                       VerifyWorkspace& ws) const override {
    if (Status s = DecodeBundleInto<FullAnswer>(bundle.bytes, &ws.cert,
                                                &ws.full);
        !s.ok()) {
      return VerifyOutcome::Reject(VerifyFailure::kMalformedProof,
                                   s.message());
    }
    return VerifyFullAnswer(owner_key_, ws.cert, query, ws.full, ws);
  }

 private:
  std::shared_ptr<const FullState> State() const {
    return std::static_pointer_cast<const FullState>(CurrentState());
  }

  Result<ProofBundle> MakeBundle(const FullState& s,
                                 const FullAnswer& answer) const {
    ProofBundle bundle;
    bundle.path = answer.path;
    bundle.distance = answer.distance;
    bundle.bytes = EncodeBundle(s.ads.certificate, answer, s.cert_size);
    // Gamma_S: the authenticated distance tuple and its B-tree digests.
    bundle.stats.sp_bytes = answer.distance_proof.SerializedSize();
    bundle.stats.sp_items = answer.distance_proof.entries.size() +
                            answer.distance_proof.tree_proof.num_digests();
    // Gamma_T: the path tuples and the network digests.
    bundle.stats.t_bytes = answer.path_tuples.TupleBytes() +
                           answer.path_tuples.IntegrityBytes() + s.cert_size;
    bundle.stats.t_items = answer.path_tuples.tuples.size() +
                           answer.path_tuples.proof.num_digests();
    return bundle;
  }

  RsaPublicKey owner_key_;
  SpAlgorithm algosp_;
};

// ---------------------------------------------------------------------------
// LDM engine
// ---------------------------------------------------------------------------

struct LdmState final : EngineState {
  explicit LdmState(LdmAds a) : ads(std::move(a)) {}
  LdmAds ads;
};

class LdmEngine : public MethodEngine {
 public:
  LdmEngine(const EngineOptions& options,
            std::shared_ptr<const Graph> g, LdmAds ads,
            RsaPublicKey owner_key)
      : MethodEngine(options),
        owner_key_(std::move(owner_key)),
        algosp_(options.provider_algorithm) {
    auto state = std::make_unique<LdmState>(std::move(ads));
    state->graph = std::move(g);
    state->certificate = state->ads.certificate;
    state->cert_size = state->certificate.SerializedSize();
    PublishState(std::move(state));
  }

  MethodKind kind() const override { return MethodKind::kLdm; }
  size_t storage_bytes() const override {
    const std::shared_ptr<const LdmState> s = State();
    return s->ads.network.StorageBytes() + s->ads.ref.size() * 12;
  }

  Result<ProofBundle> AnswerUncached(const EngineState& state,
                                     const Query& query,
                                     SearchWorkspace& ws) const override {
    const LdmState& s = static_cast<const LdmState&>(state);
    LdmProvider provider(s.graph.get(), &s.ads, algosp_);
    SPAUTH_ASSIGN_OR_RETURN(LdmAnswer answer, provider.Answer(query, ws));
    return MakeBundle(s, answer);
  }

  Result<ProofBundle> TamperedAnswer(const Query& query,
                                     TamperKind kind) const override {
    const std::shared_ptr<const LdmState> s = State();
    const Graph& g = *s->graph;
    LdmProvider provider(s->graph.get(), &s->ads, algosp_);
    switch (kind) {
      case TamperKind::kSuboptimalPath: {
        SPAUTH_ASSIGN_OR_RETURN(PathSearchResult alt,
                                FindSuboptimalPath(g, query));
        // Re-issue the provider's proof against the inflated distance by
        // answering a fake "claim": rebuild Gamma_S around alt.distance.
        SPAUTH_ASSIGN_OR_RETURN(LdmAnswer honest, provider.Answer(query));
        LdmAnswer answer;
        answer.path = std::move(alt.path);
        answer.distance = alt.distance;
        // A superset proof (radius alt.distance) keeps the Merkle part
        // valid while the path is suboptimal.
        BallResult ball = DijkstraBall(g, query.source,
                                       alt.distance +
                                           ProviderSlack(alt.distance));
        std::vector<NodeId> nodes = ball.nodes;
        const size_t direct = nodes.size();
        for (size_t i = 0; i < direct; ++i) {
          for (const Edge& e : g.Neighbors(nodes[i])) {
            nodes.push_back(e.to);
          }
        }
        const size_t with_neighbors = nodes.size();
        for (size_t i = 0; i < with_neighbors; ++i) {
          nodes.push_back(s->ads.ref[nodes[i]]);
        }
        nodes.push_back(query.source);
        nodes.push_back(query.target);
        nodes.push_back(s->ads.ref[query.source]);
        nodes.push_back(s->ads.ref[query.target]);
        SPAUTH_ASSIGN_OR_RETURN(answer.subgraph,
                                s->ads.network.ProveTuples(nodes));
        (void)honest;
        return MakeBundle(*s, answer);
      }
      case TamperKind::kTamperWeight: {
        SPAUTH_ASSIGN_OR_RETURN(LdmAnswer answer, provider.Answer(query));
        SPAUTH_RETURN_IF_ERROR(CorruptOneTupleWeight(&answer.subgraph));
        return MakeBundle(*s, answer);
      }
      case TamperKind::kDropTuple: {
        SPAUTH_ASSIGN_OR_RETURN(LdmAnswer answer, provider.Answer(query));
        if (answer.path.nodes.size() < 3) {
          return Status::NotFound("path too short to drop a tuple");
        }
        // Drop a middle path node from the proof (it is certainly needed).
        const NodeId victim =
            answer.path.nodes[answer.path.nodes.size() / 2];
        std::vector<NodeId> kept;
        for (const ExtendedTuple& t : answer.subgraph.tuples) {
          if (t.id != victim) {
            kept.push_back(t.id);
          }
        }
        SPAUTH_ASSIGN_OR_RETURN(answer.subgraph,
                                s->ads.network.ProveTuples(kept));
        return MakeBundle(*s, answer);
      }
      case TamperKind::kBogusSignature: {
        SPAUTH_ASSIGN_OR_RETURN(LdmAnswer answer, provider.Answer(query));
        auto bundle = MakeBundle(*s, answer);
        if (!bundle.ok()) {
          return bundle;
        }
        bundle.value().bytes =
            EncodeWithBogusSignature(s->ads.certificate, answer);
        return bundle;
      }
      case TamperKind::kPhantomEdge: {
        SPAUTH_ASSIGN_OR_RETURN(LdmAnswer answer, provider.Answer(query));
        answer.path.nodes = {query.source, query.target};
        return MakeBundle(*s, answer);
      }
      case TamperKind::kForgeDistanceValue:
        return Status::FailedPrecondition("LDM has no distance entries");
    }
    return Status::Internal("unhandled tamper kind");
  }

  using MethodEngine::Verify;
  VerifyOutcome Verify(const Query& query, const ProofBundle& bundle,
                       VerifyWorkspace& ws) const override {
    if (Status s = DecodeBundleInto<LdmAnswer>(bundle.bytes, &ws.cert,
                                               &ws.ldm);
        !s.ok()) {
      return VerifyOutcome::Reject(VerifyFailure::kMalformedProof,
                                   s.message());
    }
    return VerifyLdmAnswer(owner_key_, ws.cert, query, ws.ldm, ws);
  }

 private:
  std::shared_ptr<const LdmState> State() const {
    return std::static_pointer_cast<const LdmState>(CurrentState());
  }

  Result<ProofBundle> MakeBundle(const LdmState& s,
                                 const LdmAnswer& answer) const {
    ProofBundle bundle;
    bundle.path = answer.path;
    bundle.distance = answer.distance;
    bundle.bytes = EncodeBundle(s.ads.certificate, answer, s.cert_size);
    bundle.stats.sp_bytes = answer.subgraph.TupleBytes();
    bundle.stats.t_bytes = answer.subgraph.IntegrityBytes() + s.cert_size;
    bundle.stats.sp_items = answer.subgraph.tuples.size();
    bundle.stats.t_items = answer.subgraph.proof.num_digests();
    return bundle;
  }

  RsaPublicKey owner_key_;
  SpAlgorithm algosp_;
};

// ---------------------------------------------------------------------------
// HYP engine
// ---------------------------------------------------------------------------

struct HypState final : EngineState {
  explicit HypState(HypAds a) : ads(std::move(a)) {}
  HypAds ads;
};

class HypEngine : public MethodEngine {
 public:
  HypEngine(const EngineOptions& options,
            std::shared_ptr<const Graph> g, HypAds ads,
            RsaPublicKey owner_key)
      : MethodEngine(options),
        owner_key_(std::move(owner_key)),
        algosp_(options.provider_algorithm) {
    auto state = std::make_unique<HypState>(std::move(ads));
    state->graph = std::move(g);
    state->certificate = state->ads.certificate;
    state->cert_size = state->certificate.SerializedSize();
    PublishState(std::move(state));
  }

  MethodKind kind() const override { return MethodKind::kHyp; }
  size_t storage_bytes() const override {
    const std::shared_ptr<const HypState> s = State();
    return s->ads.network.StorageBytes() + s->ads.distances.StorageBytes();
  }

  Result<ProofBundle> AnswerUncached(const EngineState& state,
                                     const Query& query,
                                     SearchWorkspace& ws) const override {
    const HypState& s = static_cast<const HypState&>(state);
    HypProvider provider(s.graph.get(), &s.ads, algosp_);
    SPAUTH_ASSIGN_OR_RETURN(HypAnswer answer, provider.Answer(query, ws));
    return MakeBundle(s, answer);
  }

  Result<ProofBundle> TamperedAnswer(const Query& query,
                                     TamperKind kind) const override {
    const std::shared_ptr<const HypState> s = State();
    const Graph& g = *s->graph;
    HypProvider provider(s->graph.get(), &s->ads, algosp_);
    switch (kind) {
      case TamperKind::kSuboptimalPath: {
        SPAUTH_ASSIGN_OR_RETURN(PathSearchResult alt,
                                FindSuboptimalPath(g, query));
        SPAUTH_ASSIGN_OR_RETURN(HypAnswer answer, provider.Answer(query));
        answer.distance = alt.distance;
        answer.path = alt.path;
        // Tuple proof must still cover the (new) path nodes.
        std::vector<NodeId> nodes;
        for (const ExtendedTuple& t : answer.tuples.tuples) {
          nodes.push_back(t.id);
        }
        nodes.insert(nodes.end(), alt.path.nodes.begin(),
                     alt.path.nodes.end());
        SPAUTH_ASSIGN_OR_RETURN(answer.tuples,
                                s->ads.network.ProveTuples(nodes));
        return MakeBundle(*s, answer);
      }
      case TamperKind::kTamperWeight: {
        SPAUTH_ASSIGN_OR_RETURN(HypAnswer answer, provider.Answer(query));
        SPAUTH_RETURN_IF_ERROR(CorruptOneTupleWeight(&answer.tuples));
        return MakeBundle(*s, answer);
      }
      case TamperKind::kDropTuple: {
        SPAUTH_ASSIGN_OR_RETURN(HypAnswer answer, provider.Answer(query));
        // Drop a source-cell tuple that is not on the path: the client's
        // cell count check must catch it.
        const uint32_t cell_s =
            s->ads.hiti.partition().CellOf(query.source);
        std::unordered_set<NodeId> path_nodes(answer.path.nodes.begin(),
                                              answer.path.nodes.end());
        NodeId victim = kInvalidNode;
        std::vector<NodeId> kept;
        for (const ExtendedTuple& t : answer.tuples.tuples) {
          if (victim == kInvalidNode && t.cell == cell_s &&
              !path_nodes.contains(t.id) && t.id != query.source) {
            victim = t.id;
            continue;
          }
          kept.push_back(t.id);
        }
        if (victim == kInvalidNode) {
          return Status::NotFound("no droppable cell tuple");
        }
        SPAUTH_ASSIGN_OR_RETURN(answer.tuples,
                                s->ads.network.ProveTuples(kept));
        return MakeBundle(*s, answer);
      }
      case TamperKind::kForgeDistanceValue: {
        SPAUTH_ASSIGN_OR_RETURN(HypAnswer answer, provider.Answer(query));
        if (!answer.has_hyper_edges || answer.hyper_edges.entries.empty()) {
          return Status::NotFound("no hyper-edge entries to forge");
        }
        answer.hyper_edges.entries[0].value *= 1.1;
        return MakeBundle(*s, answer);
      }
      case TamperKind::kBogusSignature: {
        SPAUTH_ASSIGN_OR_RETURN(HypAnswer answer, provider.Answer(query));
        auto bundle = MakeBundle(*s, answer);
        if (!bundle.ok()) {
          return bundle;
        }
        bundle.value().bytes =
            EncodeWithBogusSignature(s->ads.certificate, answer);
        return bundle;
      }
      case TamperKind::kPhantomEdge: {
        SPAUTH_ASSIGN_OR_RETURN(HypAnswer answer, provider.Answer(query));
        answer.path.nodes = {query.source, query.target};
        return MakeBundle(*s, answer);
      }
    }
    return Status::Internal("unhandled tamper kind");
  }

  using MethodEngine::Verify;
  VerifyOutcome Verify(const Query& query, const ProofBundle& bundle,
                       VerifyWorkspace& ws) const override {
    if (Status s = DecodeBundleInto<HypAnswer>(bundle.bytes, &ws.cert,
                                               &ws.hyp);
        !s.ok()) {
      return VerifyOutcome::Reject(VerifyFailure::kMalformedProof,
                                   s.message());
    }
    return VerifyHypAnswer(owner_key_, ws.cert, query, ws.hyp, ws);
  }

 private:
  std::shared_ptr<const HypState> State() const {
    return std::static_pointer_cast<const HypState>(CurrentState());
  }

  Result<ProofBundle> MakeBundle(const HypState& s,
                                 const HypAnswer& answer) const {
    ProofBundle bundle;
    bundle.path = answer.path;
    bundle.distance = answer.distance;
    bundle.bytes = EncodeBundle(s.ads.certificate, answer, s.cert_size);
    // Gamma_S: tuples + hyper-edge entries; Gamma_T: all digests + indices.
    const size_t hyper_entry_bytes =
        answer.has_hyper_edges ? 4 + answer.hyper_edges.entries.size() * 20
                               : 0;
    const size_t hyper_digest_bytes =
        answer.has_hyper_edges
            ? answer.hyper_edges.tree_proof.SerializedSize()
            : 0;
    bundle.stats.sp_bytes = answer.tuples.TupleBytes() + hyper_entry_bytes;
    bundle.stats.t_bytes = answer.tuples.IntegrityBytes() +
                           hyper_digest_bytes + s.cert_size;
    bundle.stats.sp_items =
        answer.tuples.tuples.size() +
        (answer.has_hyper_edges ? answer.hyper_edges.entries.size() : 0);
    bundle.stats.t_items =
        answer.tuples.proof.num_digests() +
        (answer.has_hyper_edges ? answer.hyper_edges.tree_proof.num_digests()
                                : 0);
    return bundle;
  }

  RsaPublicKey owner_key_;
  SpAlgorithm algosp_;
};

}  // namespace

Result<std::unique_ptr<MethodEngine>> MakeEngine(const Graph& g,
                                                 const EngineOptions& options,
                                                 const RsaKeyPair& keys) {
  WallTimer timer;
  std::unique_ptr<MethodEngine> engine;
  switch (options.method) {
    case MethodKind::kDij: {
      DijOptions o;
      o.ordering = options.ordering;
      o.fanout = options.fanout;
      o.alg = options.alg;
      o.seed = options.seed;
      SPAUTH_ASSIGN_OR_RETURN(DijAds ads, BuildDijAds(g, o, keys));
      engine = std::make_unique<DijEngine>(options, UnownedGraph(g),
                                           std::move(ads),
                                           keys.public_key());
      break;
    }
    case MethodKind::kFull: {
      FullOptions o;
      o.ordering = options.ordering;
      o.fanout = options.fanout;
      o.distance_fanout = options.distance_fanout;
      o.alg = options.alg;
      o.use_floyd_warshall = options.full_use_floyd_warshall;
      o.seed = options.seed;
      SPAUTH_ASSIGN_OR_RETURN(FullAds ads, BuildFullAds(g, o, keys));
      engine = std::make_unique<FullEngine>(options, UnownedGraph(g),
                                           std::move(ads),
                                           keys.public_key());
      break;
    }
    case MethodKind::kLdm: {
      LdmOptions o;
      o.ordering = options.ordering;
      o.fanout = options.fanout;
      o.alg = options.alg;
      o.num_landmarks = options.num_landmarks;
      o.quantization_bits = options.quantization_bits;
      o.compression_xi = options.compression_xi;
      o.strategy = options.landmark_strategy;
      o.seed = options.seed;
      SPAUTH_ASSIGN_OR_RETURN(LdmAds ads, BuildLdmAds(g, o, keys));
      engine = std::make_unique<LdmEngine>(options, UnownedGraph(g),
                                           std::move(ads),
                                           keys.public_key());
      break;
    }
    case MethodKind::kHyp: {
      HypOptions o;
      o.ordering = options.ordering;
      o.fanout = options.fanout;
      o.distance_fanout = options.distance_fanout;
      o.alg = options.alg;
      o.num_cells = options.num_cells;
      o.seed = options.seed;
      SPAUTH_ASSIGN_OR_RETURN(HypAds ads, BuildHypAds(g, o, keys));
      engine = std::make_unique<HypEngine>(options, UnownedGraph(g),
                                           std::move(ads),
                                           keys.public_key());
      break;
    }
  }
  // Record the owner's offline construction time (Figures 8c, 9b, 12b, 13b).
  engine->set_construction_seconds(timer.ElapsedSeconds());
  return engine;
}

Result<std::unique_ptr<MethodEngine>> MakeDijEngineFromState(
    const EngineOptions& options, std::shared_ptr<const Graph> graph,
    DijAds ads, RsaPublicKey owner_key) {
  if (options.method != MethodKind::kDij) {
    return Status::InvalidArgument(
        "recovered-state construction is DIJ only");
  }
  if (graph == nullptr ||
      graph->num_nodes() != ads.network.num_nodes()) {
    return Status::InvalidArgument(
        "recovered graph does not match the recovered ADS");
  }
  std::unique_ptr<MethodEngine> engine = std::make_unique<DijEngine>(
      options, std::move(graph), std::move(ads), std::move(owner_key));
  return engine;
}

}  // namespace spauth
