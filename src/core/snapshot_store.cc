#include "core/snapshot_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "core/wal.h"
#include "util/crc32.h"
#include "util/failpoint.h"

namespace spauth {

namespace {

constexpr uint32_t kSnapshotMagic = 0x4E535053;  // "SPSN"
constexpr uint32_t kSnapshotFormat = 1;
constexpr std::string_view kSnapshotPrefix = "snapshot-";
constexpr std::string_view kSnapshotSuffix = ".spsnap";

Status WriteAll(int fd, const uint8_t* data, size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::Unavailable(std::string("snapshot write failed: ") +
                                 std::strerror(errno));
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return Status::Ok();
}

/// Rebuilds the CSR graph from verified tuples: every tuple embeds its
/// coordinates and full adjacency, and each undirected edge appears in
/// both endpoints' tuples, so adding it once (u < v) reconstructs the
/// exact graph the owner certified.
Result<Graph> RebuildGraph(const std::vector<ExtendedTuple>& tuples) {
  GraphBuilder builder;
  for (const ExtendedTuple& t : tuples) {
    builder.AddNode(t.x, t.y);
  }
  for (const ExtendedTuple& t : tuples) {
    for (const NeighborEntry& n : t.neighbors) {
      if (t.id < n.id) {
        Status s = builder.AddEdge(t.id, n.id, n.weight);
        if (!s.ok()) {
          return Status::Corruption("snapshot adjacency is not a graph: " +
                                    s.message());
        }
      }
    }
  }
  auto graph = builder.Build();
  if (!graph.ok()) {
    return Status::Corruption("snapshot adjacency is not a graph: " +
                              graph.status().message());
  }
  return graph;
}

}  // namespace

void EncodeSnapshotPayload(const DijAds& ads, ByteWriter* out) {
  ads.certificate.Serialize(out);
  const uint32_t num_nodes = static_cast<uint32_t>(ads.network.num_nodes());
  out->WriteU32(num_nodes);
  for (NodeId v = 0; v < num_nodes; ++v) {
    ads.network.tuple(v).Serialize(out);
  }
  // order[pos] = node at leaf pos, inverted from the node -> leaf map.
  std::vector<NodeId> order(num_nodes);
  for (NodeId v = 0; v < num_nodes; ++v) {
    order[ads.network.LeafOf(v)] = v;
  }
  for (NodeId v : order) {
    out->WriteU32(v);
  }
}

std::vector<uint8_t> EncodeSnapshotFile(const DijAds& ads) {
  ByteWriter payload;
  EncodeSnapshotPayload(ads, &payload);
  ByteWriter header;
  header.WriteU32(kSnapshotMagic);
  header.WriteU32(kSnapshotFormat);
  std::vector<uint8_t> file = header.TakeBytes();
  AppendFramedRecord(payload.view(), &file);
  return file;
}

Result<RecoveredState> DecodeAndVerifySnapshot(
    std::span<const uint8_t> file_bytes, const RsaPublicKey& owner_key) {
  ByteReader reader(file_bytes);
  uint32_t magic = 0;
  uint32_t format = 0;
  if (!reader.ReadU32(&magic).ok() || !reader.ReadU32(&format).ok() ||
      magic != kSnapshotMagic || format != kSnapshotFormat) {
    return Status::Corruption("snapshot header is not a spauth snapshot");
  }
  std::vector<uint8_t> payload;
  if (Status s = ReadFramedRecord(&reader, &payload); !s.ok()) {
    return Status::Corruption("snapshot frame damaged: " + s.message());
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after snapshot frame");
  }

  ByteReader body{std::span<const uint8_t>(payload)};
  Certificate cert;
  if (!Certificate::DeserializeInto(&body, &cert).ok()) {
    return Status::Corruption("snapshot certificate undecodable");
  }
  if (cert.params.method != MethodKind::kDij || cert.params.has_distance_tree) {
    return Status::Corruption("snapshot certifies a non-DIJ method");
  }
  uint32_t num_nodes = 0;
  if (!body.ReadU32(&num_nodes).ok()) {
    return Status::Corruption("snapshot node count undecodable");
  }
  if (cert.params.num_network_leaves != num_nodes) {
    return Status::DataLoss(
        "snapshot tuple count does not match the certified leaf count");
  }
  std::vector<ExtendedTuple> tuples(num_nodes);
  for (uint32_t v = 0; v < num_nodes; ++v) {
    if (!ExtendedTuple::DeserializeInto(&body, &tuples[v]).ok() ||
        tuples[v].id != v) {
      return Status::Corruption("snapshot tuple " + std::to_string(v) +
                                " undecodable");
    }
  }
  std::vector<NodeId> order(num_nodes);
  std::vector<bool> seen(num_nodes, false);
  for (uint32_t pos = 0; pos < num_nodes; ++pos) {
    if (!body.ReadU32(&order[pos]).ok() || order[pos] >= num_nodes ||
        seen[order[pos]]) {
      return Status::Corruption("snapshot leaf order is not a permutation");
    }
    seen[order[pos]] = true;
  }
  if (!body.AtEnd()) {
    return Status::Corruption("trailing bytes in snapshot payload");
  }

  // Verify-on-load: nothing above is *trusted* yet. The owner signature
  // authenticates the certificate, and the recomputed Merkle root ties the
  // loaded tuples to it — a stale-certificate swap or any tuple tamper
  // that survived the CRC dies here instead of getting served.
  if (!VerifyCertificate(owner_key, cert)) {
    return Status::DataLoss("snapshot certificate signature does not verify");
  }
  SPAUTH_ASSIGN_OR_RETURN(Graph graph, RebuildGraph(tuples));
  auto network = NetworkAds::Build(std::move(tuples), std::move(order),
                                   cert.params.fanout, cert.params.alg);
  if (!network.ok()) {
    return Status::Corruption("snapshot ADS rebuild failed: " +
                              network.status().message());
  }
  if (!(network.value().root() == cert.network_root)) {
    return Status::DataLoss(
        "snapshot Merkle root does not match its signed certificate");
  }
  RecoveredState state{std::make_shared<const Graph>(std::move(graph)),
                       DijAds{std::move(network).value(), cert},
                       cert.params.version};
  return state;
}

std::string SnapshotStore::PathFor(uint32_t version) const {
  char name[40];
  std::snprintf(name, sizeof(name), "snapshot-%010u.spsnap", version);
  return dir_ + "/" + name;
}

std::vector<uint32_t> SnapshotStore::ListVersions() const {
  std::vector<uint32_t> versions;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= kSnapshotPrefix.size() + kSnapshotSuffix.size() ||
        name.compare(0, kSnapshotPrefix.size(), kSnapshotPrefix) != 0 ||
        name.compare(name.size() - kSnapshotSuffix.size(),
                     kSnapshotSuffix.size(), kSnapshotSuffix) != 0) {
      continue;  // temp files and strangers
    }
    const std::string digits =
        name.substr(kSnapshotPrefix.size(),
                    name.size() - kSnapshotPrefix.size() -
                        kSnapshotSuffix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    versions.push_back(static_cast<uint32_t>(std::stoul(digits)));
  }
  std::sort(versions.rbegin(), versions.rend());
  return versions;
}

Status SnapshotStore::Write(const MethodEngine& engine) {
  if (engine.kind() != MethodKind::kDij) {
    return Status::FailedPrecondition(
        "durable snapshots are implemented for DIJ only");
  }
  ByteWriter payload;
  SPAUTH_RETURN_IF_ERROR(engine.SerializeDurableState(&payload));
  const uint32_t version = engine.certificate().params.version;

  ByteWriter header;
  header.WriteU32(kSnapshotMagic);
  header.WriteU32(kSnapshotFormat);
  std::vector<uint8_t> file = header.TakeBytes();
  AppendFramedRecord(payload.view(), &file);

  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  const std::string final_path = PathFor(version);
  const std::string temp_path = final_path + ".tmp";
  const int fd =
      ::open(temp_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    return Status::Unavailable(std::string("cannot open ") + temp_path +
                               ": " + std::strerror(errno));
  }
  if (SPAUTH_FAILPOINT_TRIGGERED("snapshot/write")) {
    // The crash before the rename: a torn temp file is all that survives.
    // Load never looks at temp files, so the store stays on the previous
    // snapshot — exactly the real-crash outcome.
    (void)WriteAll(fd, file.data(), file.size() / 2);
    ::close(fd);
    return Status::Unavailable("fail point fired: snapshot/write");
  }
  if (Status s = WriteAll(fd, file.data(), file.size()); !s.ok()) {
    ::close(fd);
    return s;
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Status::Unavailable(std::string("snapshot fsync failed: ") +
                               std::strerror(errno));
  }
  ::close(fd);
  if (std::rename(temp_path.c_str(), final_path.c_str()) != 0) {
    return Status::Unavailable(std::string("snapshot rename failed: ") +
                               std::strerror(errno));
  }
  // Make the rename itself durable (the directory entry).
  const int dir_fd = ::open(dir_.c_str(), O_RDONLY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return Status::Ok();
}

Status SnapshotStore::Checkpoint(const MethodEngine& engine, Wal* wal) {
  SPAUTH_RETURN_IF_ERROR(Write(engine));
  if (wal != nullptr) {
    // Only after the rename is durable: every logged record is now covered
    // by the snapshot, so an empty log recovers to the same state.
    SPAUTH_RETURN_IF_ERROR(wal->Reset());
  }
  return Status::Ok();
}

Result<GcReport> SnapshotStore::GarbageCollect(
    size_t keep_last_n, const RsaPublicKey& owner_key) const {
  if (keep_last_n == 0) {
    return Status::InvalidArgument("gc must keep at least 1 snapshot");
  }
  const std::vector<uint32_t> versions = ListVersions();  // newest first
  GcReport report;
  if (versions.empty()) {
    return report;
  }
  // Find the newest snapshot that passes full authenticated verification:
  // that file is the floor a concurrent LoadNewest can always fall back
  // to, so it must survive every sweep. Deleting anything while NO file
  // verifies would only destroy forensic evidence.
  bool found_verified = false;
  for (uint32_t version : versions) {
    std::ifstream in(PathFor(version), std::ios::binary);
    if (!in) {
      continue;
    }
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    if (DecodeAndVerifySnapshot(bytes, owner_key).ok()) {
      report.protected_version = version;
      found_verified = true;
      break;
    }
  }
  if (!found_verified) {
    report.kept = versions.size();
    return report;
  }
  for (size_t i = 0; i < versions.size(); ++i) {
    if (i < keep_last_n || versions[i] == report.protected_version) {
      ++report.kept;
      continue;
    }
    std::error_code ec;
    if (std::filesystem::remove(PathFor(versions[i]), ec) && !ec) {
      ++report.removed;
    } else {
      ++report.kept;  // already gone or undeletable: nothing lost either way
    }
  }
  return report;
}

Result<RecoveredState> SnapshotStore::LoadNewest(
    const RsaPublicKey& owner_key) const {
  const std::vector<uint32_t> versions = ListVersions();
  if (versions.empty()) {
    return Status::NotFound("no snapshots in " + dir_);
  }
  bool saw_damage = false;
  for (uint32_t version : versions) {
    if (SPAUTH_FAILPOINT_TRIGGERED_ARG("snapshot/load", version)) {
      saw_damage = true;  // modeled unreadable file: fall back to older
      continue;
    }
    std::ifstream in(PathFor(version), std::ios::binary);
    if (!in) {
      saw_damage = true;
      continue;
    }
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    auto recovered = DecodeAndVerifySnapshot(bytes, owner_key);
    if (recovered.ok()) {
      if (recovered.value().version != version) {
        // A validly signed snapshot under the wrong file name is a
        // rollback/rename, not rot — refuse rather than fall back.
        return Status::DataLoss(
            "snapshot file name version does not match its certificate");
      }
      return recovered;
    }
    if (recovered.status().code() == StatusCode::kDataLoss) {
      // Damage that survived the checksums (root/signature mismatch) is
      // exactly what must never be served — and never retried.
      return recovered.status();
    }
    saw_damage = true;  // CRC-level damage: try the next older snapshot
  }
  (void)saw_damage;
  return Status::DataLoss("every snapshot candidate in " + dir_ +
                          " is damaged");
}

Result<RecoveryReport> RecoverDijEngine(const SnapshotStore& store,
                                        const std::string& wal_path,
                                        const EngineOptions& options,
                                        const RsaKeyPair& keys) {
  if (options.method != MethodKind::kDij) {
    return Status::InvalidArgument("recovery is implemented for DIJ only");
  }
  SPAUTH_ASSIGN_OR_RETURN(RecoveredState state,
                          store.LoadNewest(keys.public_key()));
  RecoveryReport report;
  report.snapshot_version = state.version;
  SPAUTH_ASSIGN_OR_RETURN(
      report.engine,
      MakeDijEngineFromState(options, state.graph, std::move(state.ads),
                             keys.public_key()));

  SPAUTH_ASSIGN_OR_RETURN(WalReplay replay, Wal::Read(wal_path));
  report.wal_torn_tail = replay.torn_tail;
  for (const WalRecord& record : replay.records) {
    const uint32_t current = report.engine->certificate().params.version;
    if (record.base_version > current) {
      return Status::DataLoss(
          "wal gap: record applies on version " +
          std::to_string(record.base_version) + ", recovered state is at " +
          std::to_string(current));
    }
    if (record.base_version < current) {
      if (record.base_version + record.Count() > current) {
        return Status::DataLoss("wal record straddles the snapshot version");
      }
      ++report.wal_records_skipped;  // already absorbed by the snapshot
      continue;
    }
    auto applied =
        record.kind == WalRecordKind::kStructural
            ? report.engine->ApplyStructuralUpdates(keys, record.structural)
            : report.engine->ApplyEdgeWeightUpdates(keys, record.updates);
    if (!applied.ok()) {
      return Status::DataLoss("wal replay failed at version " +
                              std::to_string(current) + ": " +
                              applied.status().message());
    }
    ++report.wal_records_replayed;
  }
  report.recovered_version = report.engine->certificate().params.version;
  return report;
}

}  // namespace spauth
