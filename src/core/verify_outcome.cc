#include "core/verify_outcome.h"

namespace spauth {

std::string_view ToString(VerifyFailure failure) {
  switch (failure) {
    case VerifyFailure::kNone:
      return "none";
    case VerifyFailure::kMalformedProof:
      return "malformed-proof";
    case VerifyFailure::kBadCertificate:
      return "bad-certificate";
    case VerifyFailure::kRootMismatch:
      return "root-mismatch";
    case VerifyFailure::kIncompleteSubgraph:
      return "incomplete-subgraph";
    case VerifyFailure::kInvalidPath:
      return "invalid-path";
    case VerifyFailure::kDistanceMismatch:
      return "distance-mismatch";
    case VerifyFailure::kNotShortest:
      return "not-shortest";
    case VerifyFailure::kWrongEntries:
      return "wrong-entries";
    case VerifyFailure::kStaleCertificate:
      return "stale-certificate";
  }
  return "?";
}

std::string VerifyOutcome::ToString() const {
  if (accepted) {
    return "ACCEPT";
  }
  std::string out = "REJECT (";
  out += spauth::ToString(failure);
  if (!detail.empty()) {
    out += ": ";
    out += detail;
  }
  out += ")";
  return out;
}

}  // namespace spauth
