// Owner-side ADS maintenance: dynamic edge-weight updates for DIJ.
//
// Road networks change (roadworks, congestion re-weighting). DIJ is the
// only method whose hints contain no global distance information, so a
// weight change touches exactly two extended-tuples; the owner re-hashes
// those two leaves, recomputes the O(log |V|) Merkle path and re-signs a
// certificate with a bumped version — no rebuild.
//
// The other methods materialize global distances (FULL's all-pairs matrix,
// LDM's landmark vectors, HYP's hyper-edges); a weight change can
// invalidate an unbounded subset of them, so their update story is a
// rebuild (the paper leaves dynamic maintenance as an open problem; we
// implement the one method where the incremental update is sound).
#ifndef SPAUTH_CORE_UPDATES_H_
#define SPAUTH_CORE_UPDATES_H_

#include "core/dij.h"
#include "graph/graph.h"

namespace spauth {

/// Changes the weight of edge (u, v) in both the graph and the DIJ ADS:
/// refreshes the two affected tuples, updates the Merkle tree incrementally
/// and re-signs the certificate with version + 1. `g` must be the graph the
/// ADS was built over.
Status UpdateEdgeWeight(Graph* g, DijAds* ads, const RsaKeyPair& keys,
                        NodeId u, NodeId v, double new_weight);

}  // namespace spauth

#endif  // SPAUTH_CORE_UPDATES_H_
