// Owner-side ADS maintenance: the copy-on-write building block behind
// MethodEngine's snapshot rotations (DIJ only).
//
// Road networks change in two ways, and both are handled here:
//
//  - Re-weighting (roadworks, congestion): ApplyEdgeWeightUpdates. One
//    weight change touches exactly two extended-tuples; the owner
//    re-hashes those two leaves and recomputes the O(f log_f |V|) Merkle
//    path over the tree's cached level digests — no re-hash of anything
//    else.
//  - Structural change (open a road, close one, add an intersection):
//    ApplyStructuralUpdates over {AddEdge, RemoveEdge, AddVertex} ops.
//    An edge splice rewrites the two endpoint tuples exactly like a
//    re-weighting (plus the graph's CSR splice); AddVertex appends a
//    fresh base tuple at the END of the certified leaf order, growing
//    the Merkle tree by one leaf (MerkleTree::AppendLeaf) and bumping
//    MethodParams::num_network_leaves. Appending — rather than
//    re-sorting into the proximity ordering — keeps every existing leaf
//    index stable, so the incremental result is byte-identical to a
//    rebuild over (old order + appended tail); the ordering only ever
//    affects proof sizes, never soundness.
//
// The clone is as cheap as the crypto since the structures went
// persistent: Graph, NetworkAds and MerkleTree hold their payload in
// immutable shared_ptr chunks, so the engine's "clone" is a pointer-spine
// copy and the mutation below copy-on-writes only the chunks the update
// actually touches — adjacency blocks, tuple chunks, Merkle path chunks,
// and (structurally) the offset/coordinate spines and node -> leaf map.
// `copied_bytes` surfaces exactly those bytes (the engine aggregates them
// into its rotation_clone_bytes metric).
//
// Batching: both entry points absorb k changes into ONE maintenance pass
// with one version bump of +k and ONE certificate signature; singles are
// wrappers over a batch of one. The result is byte-identical to applying
// the k updates one at a time (same final tuples, same root, same
// version, and RSA PKCS#1 v1.5 signing is deterministic), which the
// batch-equivalence and structural differential tests assert. In front of
// the engine, core/update_queue.h coalesces an update *storm* into few
// such batches under a bounded-staleness knob — that is what makes the
// one-signature-per-batch amortization real in a serving system.
//
// The engine never mutates live serving state: it clones the current
// snapshot's graph and DIJ ADS (structurally shared), points these
// functions at the *clones*, and publishes the result as a fresh
// immutable EngineState (core/engine_state.h) while readers drain the old
// snapshot — which keeps aliasing the untouched chunks (and, for
// structural updates, the old shape's offsets and leaf map), safely,
// because shared state is never written in place. Calling these functions
// directly on owner-private state (as the owner-side tests and tools do)
// remains supported — just never on state a live engine is serving from.
// On an error return the graph/ADS pair may hold a partially applied
// batch with the old certificate; discard the clones (the engine does).
//
// The other methods materialize global distances (FULL's all-pairs matrix,
// LDM's landmark vectors, HYP's hyper-edges); a weight or shape change can
// invalidate an unbounded subset of them, so their update story is a
// rebuild (the paper leaves dynamic maintenance as an open problem; we
// implement the one method where the incremental update is sound, and the
// engine reports FailedPrecondition for the rest).
#ifndef SPAUTH_CORE_UPDATES_H_
#define SPAUTH_CORE_UPDATES_H_

#include <span>

#include "core/dij.h"
#include "graph/graph.h"

namespace spauth {

/// Absorbs `updates` (in order; later entries win on a repeated edge) into
/// both the graph and the DIJ ADS: refreshes the affected tuples, updates
/// the Merkle tree incrementally, bumps the certificate version by
/// `updates.size()` and signs ONCE. An empty batch is a no-op (no version
/// bump, no signature). `g` must be the graph the ADS was built over (or a
/// structurally shared clone, in the engine's copy-on-write flow).
/// `copied_bytes`, when non-null, accumulates the bytes the copy-on-write
/// chunk duplications actually copied. Not thread-safe: callers own the
/// exclusivity of `g`/`ads`.
Status ApplyEdgeWeightUpdates(Graph* g, DijAds* ads, const RsaKeyPair& keys,
                              std::span<const EdgeWeightUpdate> updates,
                              size_t* copied_bytes = nullptr);

/// Forest-mode variant: absorbs the batch exactly like the signed form —
/// same tuples, same root, same version + k — but leaves the certificate
/// UNSIGNED (empty signature). Under a forest certificate the per-shard
/// RSA signature is dead weight: the fleet layer authenticates the shard's
/// certificate *body* through the forest root's one-per-epoch signature
/// (core/forest_certificate.h), so per-shard rotations skip RSA entirely.
Status ApplyEdgeWeightUpdatesUnsigned(Graph* g, DijAds* ads,
                                      std::span<const EdgeWeightUpdate> updates,
                                      size_t* copied_bytes = nullptr);

/// Single-update wrapper: a batch of one (version + 1, one signature).
Status UpdateEdgeWeight(Graph* g, DijAds* ads, const RsaKeyPair& keys,
                        NodeId u, NodeId v, double new_weight);

/// Absorbs a batch of structural ops (in order — later ops may reference
/// vertices or edges earlier ops created) into the graph and the DIJ ADS:
/// splices the CSR, refreshes/appends the affected tuples and Merkle
/// leaves, refreshes MethodParams::num_network_leaves, bumps the version
/// by `ops.size()` and signs ONCE. An empty batch is a no-op. Same
/// contracts as ApplyEdgeWeightUpdates otherwise (copy-on-write clones,
/// `copied_bytes` accounting, partial application on error).
Status ApplyStructuralUpdates(Graph* g, DijAds* ads, const RsaKeyPair& keys,
                              std::span<const StructuralUpdate> ops,
                              size_t* copied_bytes = nullptr);

/// Forest-mode variant: identical certificate body, no per-shard RSA
/// signature (see ApplyEdgeWeightUpdatesUnsigned).
Status ApplyStructuralUpdatesUnsigned(Graph* g, DijAds* ads,
                                      std::span<const StructuralUpdate> ops,
                                      size_t* copied_bytes = nullptr);

/// Single-op wrapper: a batch of one (version + 1, one signature).
Status ApplyStructuralUpdate(Graph* g, DijAds* ads, const RsaKeyPair& keys,
                             const StructuralUpdate& op);

}  // namespace spauth

#endif  // SPAUTH_CORE_UPDATES_H_
