// Owner-side ADS maintenance: the copy-on-write building block behind
// MethodEngine's snapshot rotations (DIJ only).
//
// Road networks change (roadworks, congestion re-weighting). DIJ is the
// only method whose hints contain no global distance information, so one
// weight change touches exactly two extended-tuples: the owner re-hashes
// those two leaves and recomputes the O(f log_f |V|) Merkle path over the
// tree's cached level digests — no re-hash of anything else.
//
// The clone is as cheap as the crypto since the structures went
// persistent: Graph, NetworkAds and MerkleTree hold their payload in
// immutable shared_ptr chunks, so the engine's "clone" is a pointer-spine
// copy and the mutation below copy-on-writes only the chunks the update
// actually touches — two adjacency blocks, two tuple chunks and the two
// leaves' Merkle path chunks, O(f log_f V) fresh bytes instead of the
// former O(V + E) memcpy. `copied_bytes` surfaces exactly those bytes
// (the engine aggregates them into its rotation_clone_bytes metric).
//
// Batching: ApplyEdgeWeightUpdates absorbs k edge changes into ONE
// maintenance pass — k graph writes, up to 2k tuple refreshes (a chunk or
// path copied once stays uniquely owned, so overlapping updates pay a
// single copy), one version bump of +k and ONE certificate signature.
// The result is byte-identical to applying the k updates one at a time
// (same final tuples, same root, same version, and RSA PKCS#1 v1.5
// signing is deterministic), which the batch-equivalence tests assert.
//
// Since PR 4 the engine never mutates live serving state: it clones the
// current snapshot's graph and DIJ ADS (structurally shared), points this
// function at the *clones*, and publishes the result as a fresh immutable
// EngineState (core/engine_state.h) while readers drain the old snapshot —
// which keeps aliasing the untouched chunks, safely, because shared chunks
// are never written in place. Calling these functions directly on
// owner-private state (as the owner-side tests and tools do) remains
// supported — just never on state a live engine is serving from. On an
// error return the graph/ADS pair may hold a partially applied batch with
// the old certificate; discard the clones (the engine does).
//
// The other methods materialize global distances (FULL's all-pairs matrix,
// LDM's landmark vectors, HYP's hyper-edges); a weight change can
// invalidate an unbounded subset of them, so their update story is a
// rebuild (the paper leaves dynamic maintenance as an open problem; we
// implement the one method where the incremental update is sound, and the
// engine reports FailedPrecondition for the rest).
#ifndef SPAUTH_CORE_UPDATES_H_
#define SPAUTH_CORE_UPDATES_H_

#include <span>

#include "core/dij.h"
#include "graph/graph.h"

namespace spauth {

/// Absorbs `updates` (in order; later entries win on a repeated edge) into
/// both the graph and the DIJ ADS: refreshes the affected tuples, updates
/// the Merkle tree incrementally, bumps the certificate version by
/// `updates.size()` and signs ONCE. An empty batch is a no-op (no version
/// bump, no signature). `g` must be the graph the ADS was built over (or a
/// structurally shared clone, in the engine's copy-on-write flow).
/// `copied_bytes`, when non-null, accumulates the bytes the copy-on-write
/// chunk duplications actually copied. Not thread-safe: callers own the
/// exclusivity of `g`/`ads`.
Status ApplyEdgeWeightUpdates(Graph* g, DijAds* ads, const RsaKeyPair& keys,
                              std::span<const EdgeWeightUpdate> updates,
                              size_t* copied_bytes = nullptr);

/// Forest-mode variant: absorbs the batch exactly like the signed form —
/// same tuples, same root, same version + k — but leaves the certificate
/// UNSIGNED (empty signature). Under a forest certificate the per-shard
/// RSA signature is dead weight: the fleet layer authenticates the shard's
/// certificate *body* through the forest root's one-per-epoch signature
/// (core/forest_certificate.h), so per-shard rotations skip RSA entirely.
Status ApplyEdgeWeightUpdatesUnsigned(Graph* g, DijAds* ads,
                                      std::span<const EdgeWeightUpdate> updates,
                                      size_t* copied_bytes = nullptr);

/// Single-update wrapper: a batch of one (version + 1, one signature).
Status UpdateEdgeWeight(Graph* g, DijAds* ads, const RsaKeyPair& keys,
                        NodeId u, NodeId v, double new_weight);

}  // namespace spauth

#endif  // SPAUTH_CORE_UPDATES_H_
