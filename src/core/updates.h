// Owner-side ADS maintenance: the copy-on-write building block behind
// MethodEngine::ApplyEdgeWeightUpdate's snapshot rotation (DIJ only).
//
// Road networks change (roadworks, congestion re-weighting). DIJ is the
// only method whose hints contain no global distance information, so a
// weight change touches exactly two extended-tuples: the owner re-hashes
// those two leaves, recomputes the O(f log_f |V|) Merkle path over the
// tree's cached level digests and re-signs a certificate with a bumped
// version — no re-hash of anything else. (The engine's copy-on-write
// rotation still clones the graph/ADS containers, an O(V + E) memcpy
// with zero crypto; structural sharing that drops the clone cost to
// O(f log_f V) is a named ROADMAP follow-up.)
//
// Since PR 4 the engine never mutates live serving state: the engine
// clones the current snapshot's graph and DIJ ADS, points this function at
// the *clones*, and publishes the result as a fresh immutable EngineState
// (core/engine_state.h) while readers drain the old snapshot. Calling
// UpdateEdgeWeight directly on owner-private state (as the owner-side
// tests and tools do) remains supported — just never on state a live
// engine is serving from.
//
// The other methods materialize global distances (FULL's all-pairs matrix,
// LDM's landmark vectors, HYP's hyper-edges); a weight change can
// invalidate an unbounded subset of them, so their update story is a
// rebuild (the paper leaves dynamic maintenance as an open problem; we
// implement the one method where the incremental update is sound, and the
// engine reports FailedPrecondition for the rest).
#ifndef SPAUTH_CORE_UPDATES_H_
#define SPAUTH_CORE_UPDATES_H_

#include "core/dij.h"
#include "graph/graph.h"

namespace spauth {

/// Changes the weight of edge (u, v) in both the graph and the DIJ ADS:
/// refreshes the two affected tuples, updates the Merkle tree incrementally
/// and re-signs the certificate with version + 1. `g` must be the graph the
/// ADS was built over (or a clone of it, in the engine's copy-on-write
/// flow). Not thread-safe: callers own the exclusivity of `g`/`ads`.
Status UpdateEdgeWeight(Graph* g, DijAds* ads, const RsaKeyPair& keys,
                        NodeId u, NodeId v, double new_weight);

}  // namespace spauth

#endif  // SPAUTH_CORE_UPDATES_H_
