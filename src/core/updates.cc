#include "core/updates.h"

#include <utility>

namespace spauth {

namespace {

// Shared maintenance body; `keys` == nullptr defers the signature (forest
// mode — the fleet layer signs once over all shard roots instead).
Status ApplyUpdatesImpl(Graph* g, DijAds* ads, const RsaKeyPair* keys,
                        std::span<const EdgeWeightUpdate> updates,
                        size_t* copied_bytes) {
  if (updates.empty()) {
    return Status::Ok();
  }
  for (const EdgeWeightUpdate& up : updates) {
    SPAUTH_RETURN_IF_ERROR(
        g->SetEdgeWeight(up.u, up.v, up.new_weight, copied_bytes));

    // Refresh the two affected tuples and their Merkle leaves. A chunk or
    // Merkle path copied for an earlier update in this batch is uniquely
    // owned by now, so overlapping updates copy nothing further.
    for (NodeId node : {up.u, up.v}) {
      ExtendedTuple tuple = ads->network.tuple(node);
      const NodeId other = node == up.u ? up.v : up.u;
      bool found = false;
      for (NeighborEntry& e : tuple.neighbors) {
        if (e.id == other) {
          e.weight = up.new_weight;
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::Internal("tuple adjacency out of sync with graph");
      }
      SPAUTH_RETURN_IF_ERROR(
          ads->network.UpdateTuple(node, std::move(tuple), copied_bytes));
    }
  }

  // One signature for the whole batch, at version + k — byte-identical to
  // k single-update re-signs landing on the same root and version (the old
  // certificate stays cryptographically valid for the old root; freshness
  // enforcement is an out-of-band policy, see MethodParams::version).
  MethodParams params = ads->certificate.params;
  params.version += static_cast<uint32_t>(updates.size());
  if (keys == nullptr) {
    // Defer-signed: identical certificate body (params, roots, version),
    // no signature. Everything the forest leaf hashes is already here.
    ads->certificate.params = std::move(params);
    ads->certificate.network_root = ads->network.root();
    ads->certificate.distance_root = Digest();
    ads->certificate.signature.clear();
    return Status::Ok();
  }
  SPAUTH_ASSIGN_OR_RETURN(
      ads->certificate,
      MakeCertificate(*keys, std::move(params), ads->network.root(),
                      Digest()));
  return Status::Ok();
}

}  // namespace

Status ApplyEdgeWeightUpdates(Graph* g, DijAds* ads, const RsaKeyPair& keys,
                              std::span<const EdgeWeightUpdate> updates,
                              size_t* copied_bytes) {
  return ApplyUpdatesImpl(g, ads, &keys, updates, copied_bytes);
}

Status ApplyEdgeWeightUpdatesUnsigned(Graph* g, DijAds* ads,
                                      std::span<const EdgeWeightUpdate> updates,
                                      size_t* copied_bytes) {
  return ApplyUpdatesImpl(g, ads, nullptr, updates, copied_bytes);
}

Status UpdateEdgeWeight(Graph* g, DijAds* ads, const RsaKeyPair& keys,
                        NodeId u, NodeId v, double new_weight) {
  const EdgeWeightUpdate update{u, v, new_weight};
  return ApplyEdgeWeightUpdates(g, ads, keys, {&update, 1});
}

}  // namespace spauth
