#include "core/updates.h"

namespace spauth {

Status UpdateEdgeWeight(Graph* g, DijAds* ads, const RsaKeyPair& keys,
                        NodeId u, NodeId v, double new_weight) {
  SPAUTH_RETURN_IF_ERROR(g->SetEdgeWeight(u, v, new_weight));

  // Refresh the two affected tuples and their Merkle leaves.
  for (NodeId node : {u, v}) {
    ExtendedTuple tuple = ads->network.tuple(node);
    const NodeId other = node == u ? v : u;
    bool found = false;
    for (NeighborEntry& e : tuple.neighbors) {
      if (e.id == other) {
        e.weight = new_weight;
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::Internal("tuple adjacency out of sync with graph");
    }
    SPAUTH_RETURN_IF_ERROR(ads->network.UpdateTuple(node, std::move(tuple)));
  }

  // Re-sign with a bumped version (the old certificate stays
  // cryptographically valid for the old root — freshness enforcement is an
  // out-of-band policy; see MethodParams::version).
  MethodParams params = ads->certificate.params;
  params.version += 1;
  SPAUTH_ASSIGN_OR_RETURN(
      ads->certificate,
      MakeCertificate(keys, std::move(params), ads->network.root(),
                      Digest()));
  return Status::Ok();
}

}  // namespace spauth
