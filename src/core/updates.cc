#include "core/updates.h"

#include <algorithm>
#include <utility>

namespace spauth {

namespace {

Status SealCertificate(DijAds* ads, const RsaKeyPair* keys, size_t batch);

// Shared maintenance body; `keys` == nullptr defers the signature (forest
// mode — the fleet layer signs once over all shard roots instead).
Status ApplyUpdatesImpl(Graph* g, DijAds* ads, const RsaKeyPair* keys,
                        std::span<const EdgeWeightUpdate> updates,
                        size_t* copied_bytes) {
  if (updates.empty()) {
    return Status::Ok();
  }
  for (const EdgeWeightUpdate& up : updates) {
    SPAUTH_RETURN_IF_ERROR(
        g->SetEdgeWeight(up.u, up.v, up.new_weight, copied_bytes));

    // Refresh the two affected tuples and their Merkle leaves. A chunk or
    // Merkle path copied for an earlier update in this batch is uniquely
    // owned by now, so overlapping updates copy nothing further.
    for (NodeId node : {up.u, up.v}) {
      ExtendedTuple tuple = ads->network.tuple(node);
      const NodeId other = node == up.u ? up.v : up.u;
      bool found = false;
      for (NeighborEntry& e : tuple.neighbors) {
        if (e.id == other) {
          e.weight = up.new_weight;
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::Internal("tuple adjacency out of sync with graph");
      }
      SPAUTH_RETURN_IF_ERROR(
          ads->network.UpdateTuple(node, std::move(tuple), copied_bytes));
    }
  }

  // One signature for the whole batch, at version + k — byte-identical to
  // k single-update re-signs landing on the same root and version (the old
  // certificate stays cryptographically valid for the old root; freshness
  // enforcement is an out-of-band policy, see MethodParams::version).
  return SealCertificate(ads, keys, updates.size());
}

// Seals the batch: one version bump of +k, refreshed leaf count, one
// signature (or a defer-signed body in forest mode). Shared by the weight
// and structural pipelines so both produce byte-identical certificates
// for equal final state.
Status SealCertificate(DijAds* ads, const RsaKeyPair* keys, size_t batch) {
  MethodParams params = ads->certificate.params;
  params.version += static_cast<uint32_t>(batch);
  params.num_network_leaves =
      static_cast<uint32_t>(ads->network.tree().num_leaves());
  if (keys == nullptr) {
    // Defer-signed: identical certificate body (params, roots, version),
    // no signature. Everything the forest leaf hashes is already here.
    ads->certificate.params = std::move(params);
    ads->certificate.network_root = ads->network.root();
    ads->certificate.distance_root = Digest();
    ads->certificate.signature.clear();
    return Status::Ok();
  }
  SPAUTH_ASSIGN_OR_RETURN(
      ads->certificate,
      MakeCertificate(*keys, std::move(params), ads->network.root(),
                      Digest()));
  return Status::Ok();
}

// Shared structural maintenance body; `keys` == nullptr defers the
// signature exactly like ApplyUpdatesImpl.
Status ApplyStructuralImpl(Graph* g, DijAds* ads, const RsaKeyPair* keys,
                           std::span<const StructuralUpdate> ops,
                           size_t* copied_bytes) {
  if (ops.empty()) {
    return Status::Ok();
  }
  for (const StructuralUpdate& op : ops) {
    switch (op.kind) {
      case StructuralOpKind::kAddEdge: {
        SPAUTH_RETURN_IF_ERROR(
            g->AddEdge(op.u, op.v, op.weight, copied_bytes));
        for (NodeId node : {op.u, op.v}) {
          ExtendedTuple tuple = ads->network.tuple(node);
          const NodeId other = node == op.u ? op.v : op.u;
          const auto it = std::lower_bound(
              tuple.neighbors.begin(), tuple.neighbors.end(), other,
              [](const NeighborEntry& e, NodeId id) { return e.id < id; });
          if (it != tuple.neighbors.end() && it->id == other) {
            return Status::Internal("tuple adjacency out of sync with graph");
          }
          tuple.neighbors.insert(it, NeighborEntry{other, op.weight});
          SPAUTH_RETURN_IF_ERROR(
              ads->network.UpdateTuple(node, std::move(tuple), copied_bytes));
        }
        break;
      }
      case StructuralOpKind::kRemoveEdge: {
        SPAUTH_RETURN_IF_ERROR(g->RemoveEdge(op.u, op.v, copied_bytes));
        for (NodeId node : {op.u, op.v}) {
          ExtendedTuple tuple = ads->network.tuple(node);
          const NodeId other = node == op.u ? op.v : op.u;
          const auto it = std::lower_bound(
              tuple.neighbors.begin(), tuple.neighbors.end(), other,
              [](const NeighborEntry& e, NodeId id) { return e.id < id; });
          if (it == tuple.neighbors.end() || it->id != other) {
            return Status::Internal("tuple adjacency out of sync with graph");
          }
          tuple.neighbors.erase(it);
          SPAUTH_RETURN_IF_ERROR(
              ads->network.UpdateTuple(node, std::move(tuple), copied_bytes));
        }
        break;
      }
      case StructuralOpKind::kAddVertex: {
        SPAUTH_ASSIGN_OR_RETURN(const NodeId id,
                                g->AddVertex(op.x, op.y, copied_bytes));
        // The new node's base tuple (Eq. 1): coordinates, no neighbors —
        // exactly what BuildBaseTuples would emit for an isolated node.
        ExtendedTuple tuple;
        tuple.id = id;
        tuple.x = op.x;
        tuple.y = op.y;
        SPAUTH_RETURN_IF_ERROR(
            ads->network.AppendNodeTuple(std::move(tuple), copied_bytes));
        break;
      }
      default:
        return Status::InvalidArgument("unknown structural op kind");
    }
  }
  return SealCertificate(ads, keys, ops.size());
}

}  // namespace

Status ApplyEdgeWeightUpdates(Graph* g, DijAds* ads, const RsaKeyPair& keys,
                              std::span<const EdgeWeightUpdate> updates,
                              size_t* copied_bytes) {
  return ApplyUpdatesImpl(g, ads, &keys, updates, copied_bytes);
}

Status ApplyEdgeWeightUpdatesUnsigned(Graph* g, DijAds* ads,
                                      std::span<const EdgeWeightUpdate> updates,
                                      size_t* copied_bytes) {
  return ApplyUpdatesImpl(g, ads, nullptr, updates, copied_bytes);
}

Status UpdateEdgeWeight(Graph* g, DijAds* ads, const RsaKeyPair& keys,
                        NodeId u, NodeId v, double new_weight) {
  const EdgeWeightUpdate update{u, v, new_weight};
  return ApplyEdgeWeightUpdates(g, ads, keys, {&update, 1});
}

Status ApplyStructuralUpdates(Graph* g, DijAds* ads, const RsaKeyPair& keys,
                              std::span<const StructuralUpdate> ops,
                              size_t* copied_bytes) {
  return ApplyStructuralImpl(g, ads, &keys, ops, copied_bytes);
}

Status ApplyStructuralUpdatesUnsigned(Graph* g, DijAds* ads,
                                      std::span<const StructuralUpdate> ops,
                                      size_t* copied_bytes) {
  return ApplyStructuralImpl(g, ads, nullptr, ops, copied_bytes);
}

Status ApplyStructuralUpdate(Graph* g, DijAds* ads, const RsaKeyPair& keys,
                             const StructuralUpdate& op) {
  return ApplyStructuralUpdates(g, ads, keys, {&op, 1});
}

}  // namespace spauth
