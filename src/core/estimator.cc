#include "core/estimator.h"

#include <cmath>

#include "graph/workload.h"

namespace spauth {

double ProofSizeModel::EstimateBytes(double range) const {
  return std::exp(log_a + slope_b * std::log(range));
}

Result<ProofSizeModel> FitProofSizeModel(const MethodEngine& engine,
                                         const Graph& g,
                                         const EstimatorOptions& options) {
  if (options.calibration_ranges.size() < 2) {
    return Status::InvalidArgument("need at least two calibration ranges");
  }
  if (options.queries_per_range == 0) {
    return Status::InvalidArgument("queries_per_range must be positive");
  }

  // One (log r, log mean-bytes) sample per calibration range.
  std::vector<double> xs, ys;
  for (double range : options.calibration_ranges) {
    if (!(range > 0)) {
      return Status::InvalidArgument("calibration ranges must be positive");
    }
    WorkloadOptions wopts;
    wopts.count = options.queries_per_range;
    wopts.query_range = range;
    wopts.seed = options.seed;
    SPAUTH_ASSIGN_OR_RETURN(std::vector<Query> queries,
                            GenerateWorkload(g, wopts));
    double total = 0;
    for (const Query& q : queries) {
      SPAUTH_ASSIGN_OR_RETURN(ProofBundle bundle, engine.Answer(q));
      total += static_cast<double>(bundle.stats.total_bytes());
    }
    xs.push_back(std::log(range));
    ys.push_back(std::log(total / queries.size()));
  }

  // Ordinary least squares in log-log space.
  const size_t n = xs.size();
  double mean_x = 0, mean_y = 0;
  for (size_t i = 0; i < n; ++i) {
    mean_x += xs[i];
    mean_y += ys[i];
  }
  mean_x /= n;
  mean_y /= n;
  double sxx = 0, sxy = 0;
  for (size_t i = 0; i < n; ++i) {
    sxx += (xs[i] - mean_x) * (xs[i] - mean_x);
    sxy += (xs[i] - mean_x) * (ys[i] - mean_y);
  }
  if (sxx == 0) {
    return Status::InvalidArgument("calibration ranges must be distinct");
  }

  ProofSizeModel model;
  model.method = engine.kind();
  model.slope_b = sxy / sxx;
  model.log_a = mean_y - model.slope_b * mean_x;
  double ss_res = 0;
  for (size_t i = 0; i < n; ++i) {
    const double fitted = model.log_a + model.slope_b * xs[i];
    ss_res += (ys[i] - fitted) * (ys[i] - fitted);
  }
  model.log_residual = std::sqrt(ss_res / n);
  return model;
}

}  // namespace spauth
