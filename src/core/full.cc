#include "core/full.h"

#include <cmath>

#include "core/client_search.h"
#include "core/verify_workspace.h"
#include "graph/all_pairs.h"
#include "graph/dijkstra.h"

namespace spauth {

Result<FullAds> BuildFullAds(const Graph& g, const FullOptions& options,
                             const RsaKeyPair& keys) {
  if (g.num_nodes() < 2) {
    return Status::InvalidArgument("graph too small");
  }
  std::vector<ExtendedTuple> tuples = BuildBaseTuples(g);
  std::vector<NodeId> order = ComputeOrdering(g, options.ordering, options.seed);
  SPAUTH_ASSIGN_OR_RETURN(
      NetworkAds network,
      NetworkAds::Build(std::move(tuples), std::move(order), options.fanout,
                        options.alg));

  // All-pairs distances; the O(|V|^2) tuple count and O(|V|^3) time are the
  // whole point of this method's trade-off.
  DistanceMatrix matrix = options.use_floyd_warshall ? FloydWarshall(g)
                                                     : AllPairsDijkstra(g);
  const size_t n = g.num_nodes();
  std::vector<DistanceEntry> entries;
  entries.reserve(n * (n - 1) / 2);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) {
      const double d = matrix.at(i, j);
      if (d == kInfDistance) {
        return Status::InvalidArgument(
            "FULL requires a connected graph (unreachable pair found)");
      }
      entries.push_back({PackNodePairKey(i, j), d});
    }
  }
  SPAUTH_ASSIGN_OR_RETURN(
      MerkleBTree distances,
      MerkleBTree::Build(std::move(entries), options.distance_fanout,
                         options.alg));

  MethodParams params;
  params.method = MethodKind::kFull;
  params.alg = options.alg;
  params.fanout = options.fanout;
  params.ordering = options.ordering;
  params.num_network_leaves = static_cast<uint32_t>(network.num_nodes());
  params.has_distance_tree = true;
  params.num_distance_leaves = static_cast<uint32_t>(distances.size());
  params.distance_fanout = options.distance_fanout;
  SPAUTH_ASSIGN_OR_RETURN(
      Certificate cert,
      MakeCertificate(keys, std::move(params), network.root(),
                      distances.root()));
  return FullAds{std::move(network), std::move(distances), std::move(cert)};
}

Result<FullAnswer> FullProvider::Answer(const Query& query) const {
  SearchWorkspace ws;
  return Answer(query, ws);
}

Result<FullAnswer> FullProvider::Answer(const Query& query,
                                        SearchWorkspace& ws) const {
  if (!g_->IsValidNode(query.source) || !g_->IsValidNode(query.target) ||
      query.source == query.target) {
    return Status::InvalidArgument("bad query endpoints");
  }
  PathSearchResult sp =
      RunShortestPath(*g_, query.source, query.target, algosp_, ws);
  if (!sp.reachable) {
    return Status::NotFound("target not reachable from source");
  }
  FullAnswer answer;
  answer.path = std::move(sp.path);
  answer.distance = sp.distance;
  const uint64_t key = PackNodePairKey(query.source, query.target);
  SPAUTH_ASSIGN_OR_RETURN(answer.distance_proof,
                          ads_->distances.Lookup(std::vector<uint64_t>{key}));
  SPAUTH_ASSIGN_OR_RETURN(answer.path_tuples,
                          ads_->network.ProveTuples(answer.path.nodes));
  return answer;
}

void FullAnswer::Serialize(ByteWriter* out) const {
  out->WriteU32(static_cast<uint32_t>(path.nodes.size()));
  for (NodeId v : path.nodes) {
    out->WriteU32(v);
  }
  out->WriteF64(distance);
  distance_proof.Serialize(out);
  path_tuples.Serialize(out);
}

Result<FullAnswer> FullAnswer::Deserialize(ByteReader* in) {
  FullAnswer answer;
  SPAUTH_RETURN_IF_ERROR(DeserializeInto(in, &answer));
  return answer;
}

Status FullAnswer::DeserializeInto(ByteReader* in, FullAnswer* out) {
  uint32_t path_len = 0;
  SPAUTH_RETURN_IF_ERROR(in->ReadU32(&path_len));
  if (path_len == 0 || path_len > in->remaining() / 4) {
    return Status::Malformed("bad path length");
  }
  out->path.nodes.resize(path_len);
  for (uint32_t i = 0; i < path_len; ++i) {
    SPAUTH_RETURN_IF_ERROR(in->ReadU32(&out->path.nodes[i]));
  }
  SPAUTH_RETURN_IF_ERROR(in->ReadF64(&out->distance));
  SPAUTH_RETURN_IF_ERROR(
      MerkleBTreeProof::DeserializeInto(in, &out->distance_proof));
  return TupleSetProof::DeserializeInto(in, &out->path_tuples);
}

VerifyOutcome VerifyFullAnswer(const RsaPublicKey& owner_key,
                               const Certificate& cert, const Query& query,
                               const FullAnswer& answer) {
  VerifyWorkspace ws;
  return VerifyFullAnswer(owner_key, cert, query, answer, ws);
}

VerifyOutcome VerifyFullAnswer(const RsaPublicKey& owner_key,
                               const Certificate& cert, const Query& query,
                               const FullAnswer& answer, VerifyWorkspace& ws) {
  if ((!ws.cert_preauthenticated && !VerifyCertificate(owner_key, cert)) ||
      cert.params.method != MethodKind::kFull ||
      !cert.params.has_distance_tree) {
    return VerifyOutcome::Reject(VerifyFailure::kBadCertificate,
                                 "certificate invalid or wrong method");
  }

  // 1. The authenticated distance value for (vs, vt).
  const MerkleBTreeProof& dp = answer.distance_proof;
  if (dp.tree_proof.num_leaves != cert.params.num_distance_leaves ||
      dp.tree_proof.fanout != cert.params.distance_fanout ||
      dp.tree_proof.alg != cert.params.alg || dp.entries.size() != 1) {
    return VerifyOutcome::Reject(VerifyFailure::kMalformedProof,
                                 "distance proof shape mismatch");
  }
  if (dp.entries[0].key != PackNodePairKey(query.source, query.target)) {
    return VerifyOutcome::Reject(VerifyFailure::kWrongEntries,
                                 "distance entry is for a different pair");
  }
  auto dist_root = ReconstructBTreeRoot(dp, ws.merkle, &ws.leaf_scratch);
  if (!dist_root.ok()) {
    return VerifyOutcome::Reject(VerifyFailure::kMalformedProof,
                                 dist_root.status().message());
  }
  if (!(dist_root.value() == cert.distance_root)) {
    return VerifyOutcome::Reject(VerifyFailure::kRootMismatch,
                                 "distance tree root mismatch");
  }
  const double certified_distance = dp.entries[0].value;

  // 2. The path tuples against the network root.
  const MerkleSubsetProof& np = answer.path_tuples.proof;
  if (np.num_leaves != cert.params.num_network_leaves ||
      np.fanout != cert.params.fanout || np.alg != cert.params.alg) {
    return VerifyOutcome::Reject(VerifyFailure::kMalformedProof,
                                 "network proof shape mismatch");
  }
  if (Status s = answer.path_tuples.VerifyAgainstRoot(cert.network_root,
                                                      ws.merkle,
                                                      &ws.leaf_scratch);
      !s.ok()) {
    return VerifyOutcome::Reject(
        s.code() == StatusCode::kVerificationFailed
            ? VerifyFailure::kRootMismatch
            : VerifyFailure::kMalformedProof,
        s.message());
  }
  if (Status s = answer.path_tuples.IndexInto(cert.params.num_network_leaves,
                                              &ws.index);
      !s.ok()) {
    return VerifyOutcome::Reject(VerifyFailure::kMalformedProof, s.message());
  }

  // 3. The reported path is real and sums to the claimed distance.
  VerifyOutcome path_check = CheckPathAgainstTuples(ws.index, query,
                                                    answer.path,
                                                    answer.distance,
                                                    &ws.path_scratch);
  if (!path_check.accepted) {
    return path_check;
  }

  // 4. The claim equals the owner-certified shortest distance.
  if (std::abs(answer.distance - certified_distance) >
      VerifySlack(certified_distance)) {
    return VerifyOutcome::Reject(
        answer.distance > certified_distance ? VerifyFailure::kNotShortest
                                             : VerifyFailure::kDistanceMismatch,
        "claimed distance differs from the certified distance");
  }
  return VerifyOutcome::Accept();
}

}  // namespace spauth
