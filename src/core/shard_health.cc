#include "core/shard_health.h"

namespace spauth {

const char* ToString(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "?";
}

ShardHealth::ShardHealth(CircuitBreakerOptions options)
    : options_(options), window_(options_.window == 0 ? 1 : options_.window) {}

bool ShardHealth::AllowRequest() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (++cooldown_ticks_ < options_.open_cooldown) {
        return false;
      }
      // Cooldown spent: this caller becomes the first half-open probe.
      state_ = BreakerState::kHalfOpen;
      probes_admitted_ = 1;
      probe_successes_ = 0;
      return true;
    case BreakerState::kHalfOpen:
      // Outcomes may still be outstanding for admitted probes; cap what
      // is in flight so a dead shard sees at most half_open_probes
      // requests per cooldown cycle.
      if (probes_admitted_ < options_.half_open_probes) {
        ++probes_admitted_;
        return true;
      }
      return false;
  }
  return true;
}

void ShardHealth::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == BreakerState::kHalfOpen) {
    if (++probe_successes_ >= options_.half_open_probes) {
      // Recovered: close with a fresh window so stale failures from the
      // outage cannot immediately re-trip.
      state_ = BreakerState::kClosed;
      window_count_ = 0;
      window_failures_ = 0;
      window_pos_ = 0;
    }
    return;
  }
  if (state_ != BreakerState::kClosed) {
    return;  // stale outcome from before the trip
  }
  if (window_count_ == window_.size()) {
    window_failures_ -= window_[window_pos_] ? 1 : 0;
  } else {
    ++window_count_;
  }
  window_[window_pos_] = false;
  window_pos_ = (window_pos_ + 1) % window_.size();
}

void ShardHealth::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == BreakerState::kHalfOpen) {
    TripLocked();  // a failed probe reopens immediately
    return;
  }
  if (state_ != BreakerState::kClosed) {
    return;  // stale outcome from before the trip
  }
  if (window_count_ == window_.size()) {
    window_failures_ -= window_[window_pos_] ? 1 : 0;
  } else {
    ++window_count_;
  }
  window_[window_pos_] = true;
  ++window_failures_;
  window_pos_ = (window_pos_ + 1) % window_.size();
  if (window_count_ >= options_.min_samples &&
      static_cast<double>(window_failures_) >=
          options_.failure_threshold * static_cast<double>(window_count_)) {
    TripLocked();
  }
}

void ShardHealth::TripLocked() {
  state_ = BreakerState::kOpen;
  cooldown_ticks_ = 0;
  probes_admitted_ = 0;
  probe_successes_ = 0;
  window_count_ = 0;
  window_failures_ = 0;
  window_pos_ = 0;
  ++opens_;
}

BreakerState ShardHealth::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

uint64_t ShardHealth::opens() const {
  std::lock_guard<std::mutex> lock(mu_);
  return opens_;
}

double ShardHealth::failure_fraction() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (window_count_ == 0) {
    return 0.0;
  }
  return static_cast<double>(window_failures_) /
         static_cast<double>(window_count_);
}

}  // namespace spauth
