// The standalone client role.
//
// MethodEngine bundles all three parties for tests and benches, but a real
// client owns nothing except the data owner's public key: it receives an
// opaque byte string (certificate ‖ proof) from the service provider and
// must verify it without a graph, an ADS, or prior knowledge of which
// method the owner deployed. VerifyWireAnswer decodes the certificate,
// dispatches to the matching verifier, and returns the verified path.
//
// The verification fast path mirrors the provider's serving fast path:
// a VerifyWorkspace pools every decode/replay/search buffer so a hot
// client verifies a message stream with near-zero steady-state
// allocations, and Client::VerifyBatch fans a stream over a worker pool
// with one workspace per worker.
#ifndef SPAUTH_CORE_CLIENT_H_
#define SPAUTH_CORE_CLIENT_H_

#include <memory>
#include <span>
#include <vector>

#include "core/certificate.h"
#include "core/verify_outcome.h"
#include "crypto/rsa.h"
#include "graph/path.h"
#include "graph/workload.h"

namespace spauth {

struct VerifyWorkspace;  // core/verify_workspace.h
struct ProofBundle;      // core/engine.h

/// Result of client-side wire verification.
struct WireVerification {
  VerifyOutcome outcome;
  MethodKind method = MethodKind::kDij;  // from the certificate
  Path path;                             // the provider's path
  double distance = 0;                   // its verified distance
};

/// Decodes and verifies a full wire message (the bytes of a ProofBundle).
/// Never fails with a Status: malformed input is an outcome-level
/// rejection, mirroring what a deployed client would do.
WireVerification VerifyWireAnswer(const RsaPublicKey& owner_key,
                                  const Query& query,
                                  std::span<const uint8_t> wire_bytes);

/// Fast path: decodes into and verifies out of `ws`, writing the result
/// into `out` (whose path vector keeps its capacity across calls). The
/// plain overload is a thin wrapper, so outcomes are identical by
/// construction.
void VerifyWireAnswer(const RsaPublicKey& owner_key, const Query& query,
                      std::span<const uint8_t> wire_bytes,
                      VerifyWorkspace& ws, WireVerification* out);

/// A client session: the owner's public key plus a hot VerifyWorkspace for
/// serial use. Single-threaded except VerifyBatch, which spins up its own
/// per-worker workspaces.
class Client {
 public:
  explicit Client(RsaPublicKey owner_key);
  ~Client();
  Client(Client&&) noexcept;
  Client& operator=(Client&&) noexcept;

  const RsaPublicKey& owner_key() const { return owner_key_; }

  /// Serial fast path: verifies one wire message, reusing the client's
  /// workspace across calls.
  WireVerification Verify(const Query& query,
                          std::span<const uint8_t> wire_bytes);

  /// Verifies a message stream on a small internal worker pool, one reused
  /// VerifyWorkspace per worker (num_threads == 0 picks a host default).
  /// `wire_messages` is parallel to `queries`; the result vector is
  /// parallel to both. A count mismatch yields rejection outcomes.
  std::vector<WireVerification> VerifyBatch(
      std::span<const Query> queries,
      std::span<const std::span<const uint8_t>> wire_messages,
      size_t num_threads = 0) const;

  /// Routing-aware batch verify for streams served by a ShardedEngine:
  /// `shard_of[i]` names the shard that served message i, and each worker
  /// drains whole shard groups in order, so the decode scratch and RSA
  /// certificate state stay hot on one shard's certificate stream instead
  /// of thrashing between shards. Bundles are consumed zero-copy through
  /// their shared_ptr (a null bundle yields a rejection outcome).
  /// Outcomes are identical to VerifyBatch on the same messages; only the
  /// work order differs. All three spans must be parallel.
  std::vector<WireVerification> VerifyShardedBatch(
      std::span<const Query> queries,
      std::span<const std::shared_ptr<const ProofBundle>> bundles,
      std::span<const uint32_t> shard_of, size_t num_threads = 0) const;

 private:
  RsaPublicKey owner_key_;
  std::unique_ptr<VerifyWorkspace> ws_;
};

}  // namespace spauth

#endif  // SPAUTH_CORE_CLIENT_H_
