// The standalone client role.
//
// MethodEngine bundles all three parties for tests and benches, but a real
// client owns nothing except the data owner's public key: it receives an
// opaque byte string (certificate ‖ proof) from the service provider and
// must verify it without a graph, an ADS, or prior knowledge of which
// method the owner deployed. VerifyWireAnswer decodes the certificate,
// dispatches to the matching verifier, and returns the verified path.
#ifndef SPAUTH_CORE_CLIENT_H_
#define SPAUTH_CORE_CLIENT_H_

#include <span>

#include "core/certificate.h"
#include "core/verify_outcome.h"
#include "crypto/rsa.h"
#include "graph/path.h"
#include "graph/workload.h"

namespace spauth {

/// Result of client-side wire verification.
struct WireVerification {
  VerifyOutcome outcome;
  MethodKind method = MethodKind::kDij;  // from the certificate
  Path path;                             // the provider's path
  double distance = 0;                   // its verified distance
};

/// Decodes and verifies a full wire message (the bytes of a ProofBundle).
/// Never fails with a Status: malformed input is an outcome-level
/// rejection, mirroring what a deployed client would do.
WireVerification VerifyWireAnswer(const RsaPublicKey& owner_key,
                                  const Query& query,
                                  std::span<const uint8_t> wire_bytes);

}  // namespace spauth

#endif  // SPAUTH_CORE_CLIENT_H_
