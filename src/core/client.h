// The standalone client role.
//
// MethodEngine bundles all three parties for tests and benches, but a real
// client owns nothing except the data owner's public key: it receives an
// opaque byte string (certificate ‖ proof) from the service provider and
// must verify it without a graph, an ADS, or prior knowledge of which
// method the owner deployed. VerifyWireAnswer decodes the certificate,
// dispatches to the matching verifier, and returns the verified path.
//
// The verification fast path mirrors the provider's serving fast path:
// a VerifyWorkspace pools every decode/replay/search buffer so a hot
// client verifies a message stream with near-zero steady-state
// allocations, and Client::VerifyBatch fans a stream over a worker pool
// with one workspace per worker.
//
// Freshness: the paper's owner re-signs a bumped-version certificate
// after every update but leaves "accept only fresh certificates" as an
// out-of-band policy. TrackShardVersions turns that policy on: the client
// keeps a monotonic per-shard version watermark and rejects (as
// kStaleCertificate) any authentic answer whose certificate version is
// older than one it has already accepted from the same serving shard.
#ifndef SPAUTH_CORE_CLIENT_H_
#define SPAUTH_CORE_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/certificate.h"
#include "core/verify_outcome.h"
#include "crypto/rsa.h"
#include "graph/path.h"
#include "graph/workload.h"

namespace spauth {

struct VerifyWorkspace;     // core/verify_workspace.h
struct ProofBundle;         // core/engine.h
struct ForestCertificate;   // core/forest_certificate.h

/// Result of client-side wire verification.
struct WireVerification {
  VerifyOutcome outcome;
  MethodKind method = MethodKind::kDij;  // from the certificate
  uint32_t version = 0;                  // certificate version (0 until the
                                         // certificate decodes)
  // Bounded-staleness degradation (Client::SetStalenessBound): the answer
  // is authentic and accepted, but its certificate version trails the
  // shard's watermark by `staleness` (<= the configured bound). A strict
  // client treats degraded answers as it would fresh ones; a strict SLA
  // surface can count or refuse them.
  bool degraded = false;
  uint32_t staleness = 0;
  Path path;                             // the provider's path
  double distance = 0;                   // its verified distance
};

/// Decodes and verifies a full wire message (the bytes of a ProofBundle).
/// Never fails with a Status: malformed input is an outcome-level
/// rejection, mirroring what a deployed client would do.
WireVerification VerifyWireAnswer(const RsaPublicKey& owner_key,
                                  const Query& query,
                                  std::span<const uint8_t> wire_bytes);

/// Fast path: decodes into and verifies out of `ws`, writing the result
/// into `out` (whose path vector keeps its capacity across calls). The
/// plain overload is a thin wrapper, so outcomes are identical by
/// construction.
void VerifyWireAnswer(const RsaPublicKey& owner_key, const Query& query,
                      std::span<const uint8_t> wire_bytes,
                      VerifyWorkspace& ws, WireVerification* out);

/// Forest-mode fast path: `forest` must already be signature-verified by
/// the caller (Client::AcceptForestCertificate does, once per fleet
/// epoch). Decodes a ForestPath from `path_bytes` and the certificate
/// from `wire_bytes`, authenticates the certificate body through the
/// forest root with a few hashes — NO per-answer RSA — then verifies the
/// answer exactly like VerifyWireAnswer. A path that fails to reach the
/// certified root (wrong shard, wrong epoch, tampered siblings, forged
/// certificate) rejects with kBadCertificate.
void VerifyWireAnswer(const RsaPublicKey& owner_key,
                      const ForestCertificate& forest, uint32_t shard,
                      const Query& query, std::span<const uint8_t> wire_bytes,
                      std::span<const uint8_t> path_bytes,
                      VerifyWorkspace& ws, WireVerification* out);

/// A client session: the owner's public key plus a hot VerifyWorkspace for
/// serial use. Single-threaded except VerifyBatch, which spins up its own
/// per-worker workspaces.
class Client {
 public:
  explicit Client(RsaPublicKey owner_key);
  ~Client();
  Client(Client&&) noexcept;
  Client& operator=(Client&&) noexcept;

  const RsaPublicKey& owner_key() const { return owner_key_; }

  /// Enables staleness detection over `num_shards` serving shards: once an
  /// answer with certificate version V from shard s has been accepted,
  /// every later answer from shard s with version < V is rejected with
  /// kStaleCertificate — the per-shard watermark only ever moves forward,
  /// so the versions this client accepts from one shard are monotonic even
  /// under concurrent VerifyBatch workers. Unsharded surfaces (Verify,
  /// VerifyBatch) enforce against shard 0. Call before verifying (it
  /// resets existing watermarks).
  void TrackShardVersions(size_t num_shards);
  bool tracking_versions() const { return watermarks_ != nullptr; }

  /// Bounded-staleness mode for degraded serving: an authentic answer
  /// whose version V trails shard s's watermark W is ACCEPTED (flagged
  /// degraded, staleness = W - V) when W - V <= max_versions_behind, and
  /// still rejected as kStaleCertificate below that floor. The watermark
  /// never retreats — a degraded accept does not lower it, so a frozen
  /// replica can serve through an outage without resetting freshness for
  /// the fleet. 0 (the default) restores strict monotone freshness.
  /// Call before verifying, like TrackShardVersions.
  void SetStalenessBound(uint32_t max_versions_behind) {
    staleness_bound_ = max_versions_behind;
  }
  uint32_t staleness_bound() const { return staleness_bound_; }
  /// Highest certificate version accepted so far from `shard` (0 when
  /// nothing was accepted yet or tracking is off/out of range).
  uint32_t ShardVersionWatermark(size_t shard) const;

  /// Forest trust anchor: verifies the forest certificate's RSA signature
  /// (ONE verify, amortized over every answer of the epoch) and installs
  /// it as the current epoch. The fleet-epoch watermark is monotone:
  /// re-accepting the current epoch's exact certificate is a free no-op
  /// (reconnects re-send it), an older epoch is refused as stale, and a
  /// DIFFERENT certificate for the accepted epoch is refused as
  /// equivocation. Call from the session thread, not concurrently with
  /// verification (same contract as TrackShardVersions).
  Status AcceptForestCertificate(const ForestCertificate& cert);
  /// Same, decoding from wire bytes first.
  Status AcceptForestCertificate(std::span<const uint8_t> encoded);
  bool has_forest() const { return forest_ != nullptr; }
  /// Highest fleet epoch accepted so far (0 before any forest).
  uint32_t FleetEpochWatermark() const { return fleet_epoch_watermark_; }

  /// Serial fast path: verifies one wire message, reusing the client's
  /// workspace across calls.
  WireVerification Verify(const Query& query,
                          std::span<const uint8_t> wire_bytes);
  /// Same, attributing the message to `shard` for watermark enforcement
  /// (the three-argument form Verify delegates to with shard 0).
  WireVerification Verify(const Query& query,
                          std::span<const uint8_t> wire_bytes, size_t shard);

  /// Verifies a message stream on a small internal worker pool, one reused
  /// VerifyWorkspace per worker (num_threads == 0 picks a host default).
  /// `wire_messages` is parallel to `queries`; the result vector is
  /// parallel to both. A count mismatch yields rejection outcomes.
  std::vector<WireVerification> VerifyBatch(
      std::span<const Query> queries,
      std::span<const std::span<const uint8_t>> wire_messages,
      size_t num_threads = 0) const;

  /// Routing-aware batch verify for streams served by a ShardedEngine:
  /// `shard_of[i]` names the shard that served message i, and each worker
  /// drains whole shard groups in order, so the decode scratch and RSA
  /// certificate state stay hot on one shard's certificate stream instead
  /// of thrashing between shards. Bundles are consumed zero-copy through
  /// their shared_ptr (a null bundle yields a rejection outcome).
  /// Outcomes are identical to VerifyBatch on the same messages; only the
  /// work order differs. All three spans must be parallel.
  std::vector<WireVerification> VerifyShardedBatch(
      std::span<const Query> queries,
      std::span<const std::shared_ptr<const ProofBundle>> bundles,
      std::span<const uint32_t> shard_of, size_t num_threads = 0) const;

  /// Forest-mode serial verify: `path_bytes` is the encoded ForestPath the
  /// provider attached for the serving shard. Requires an accepted forest
  /// (AcceptForestCertificate); rejects with kBadCertificate otherwise —
  /// forest mode is opt-in precisely so a client cannot silently fall back
  /// to trusting unsigned certificates.
  WireVerification VerifyForest(const Query& query,
                                std::span<const uint8_t> wire_bytes,
                                std::span<const uint8_t> path_bytes,
                                size_t shard);

  /// Forest-mode sharded batch: like VerifyShardedBatch, plus one encoded
  /// ForestPath per message (`path_of[i]` authenticates bundle i's
  /// certificate; the caller typically maps shard → the fleet's encoded
  /// path). The whole batch performs ZERO RSA operations — the one verify
  /// happened in AcceptForestCertificate.
  std::vector<WireVerification> VerifyShardedBatchForest(
      std::span<const Query> queries,
      std::span<const std::shared_ptr<const ProofBundle>> bundles,
      std::span<const std::span<const uint8_t>> path_of,
      std::span<const uint32_t> shard_of, size_t num_threads = 0) const;

 private:
  /// Watermark enforcement: downgrades an accepted `out` to a
  /// kStaleCertificate rejection when its version is below shard's
  /// watermark, otherwise advances the watermark (lock-free fetch-max).
  /// No-op when tracking is off or `shard` is out of the tracked range.
  void ApplyWatermark(size_t shard, WireVerification* out) const;

  RsaPublicKey owner_key_;
  std::unique_ptr<VerifyWorkspace> ws_;
  // The accepted fleet epoch's forest. Written by AcceptForestCertificate
  // (session thread), read-only during verification — same contract as
  // staleness_bound_.
  std::shared_ptr<const ForestCertificate> forest_;
  uint32_t fleet_epoch_watermark_ = 0;
  std::unique_ptr<std::atomic<uint32_t>[]> watermarks_;
  size_t num_tracked_shards_ = 0;
  // Written by SetStalenessBound before verification starts, read-only
  // during (possibly concurrent) verification — same contract as the
  // watermark array's size.
  uint32_t staleness_bound_ = 0;
};

}  // namespace spauth

#endif  // SPAUTH_CORE_CLIENT_H_
