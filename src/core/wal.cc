#include "core/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "util/crc32.h"
#include "util/failpoint.h"

namespace spauth {

namespace {

Status WriteAll(int fd, const uint8_t* data, size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::Unavailable(std::string("wal write failed: ") +
                                 std::strerror(errno));
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

void WalRecord::Serialize(ByteWriter* out) const {
  out->WriteU8(static_cast<uint8_t>(kind));
  out->WriteU32(base_version);
  if (kind == WalRecordKind::kEdgeWeights) {
    out->WriteU32(static_cast<uint32_t>(updates.size()));
    for (const EdgeWeightUpdate& u : updates) {
      out->WriteU32(u.u);
      out->WriteU32(u.v);
      out->WriteF64(u.new_weight);
    }
    return;
  }
  out->WriteU32(static_cast<uint32_t>(structural.size()));
  for (const StructuralUpdate& op : structural) {
    // Fixed layout regardless of op kind: replay must be byte-exact, and a
    // uniform 33-byte op keeps the count-vs-remaining check trivial.
    out->WriteU8(static_cast<uint8_t>(op.kind));
    out->WriteU32(op.u);
    out->WriteU32(op.v);
    out->WriteF64(op.weight);
    out->WriteF64(op.x);
    out->WriteF64(op.y);
  }
}

Status WalRecord::DeserializeInto(ByteReader* in, WalRecord* out) {
  uint8_t kind_byte = 0;
  SPAUTH_RETURN_IF_ERROR(in->ReadU8(&kind_byte));
  if (kind_byte != static_cast<uint8_t>(WalRecordKind::kEdgeWeights) &&
      kind_byte != static_cast<uint8_t>(WalRecordKind::kStructural)) {
    // A kind this build cannot interpret: the record is whole (the CRC
    // passed) but replaying around it would silently lose an update batch.
    return Status::DataLoss("wal record kind unknown to this build");
  }
  out->kind = static_cast<WalRecordKind>(kind_byte);
  SPAUTH_RETURN_IF_ERROR(in->ReadU32(&out->base_version));
  uint32_t count = 0;
  SPAUTH_RETURN_IF_ERROR(in->ReadU32(&count));
  out->updates.clear();
  out->structural.clear();
  if (out->kind == WalRecordKind::kEdgeWeights) {
    if (static_cast<size_t>(count) * 16 > in->remaining()) {
      return Status::Malformed("wal record update count exceeds payload");
    }
    out->updates.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      EdgeWeightUpdate u;
      SPAUTH_RETURN_IF_ERROR(in->ReadU32(&u.u));
      SPAUTH_RETURN_IF_ERROR(in->ReadU32(&u.v));
      SPAUTH_RETURN_IF_ERROR(in->ReadF64(&u.new_weight));
      out->updates.push_back(u);
    }
  } else {
    if (static_cast<size_t>(count) * 33 > in->remaining()) {
      return Status::Malformed("wal record op count exceeds payload");
    }
    out->structural.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      StructuralUpdate op;
      uint8_t op_kind = 0;
      SPAUTH_RETURN_IF_ERROR(in->ReadU8(&op_kind));
      if (op_kind < static_cast<uint8_t>(StructuralOpKind::kAddEdge) ||
          op_kind > static_cast<uint8_t>(StructuralOpKind::kAddVertex)) {
        return Status::DataLoss("wal structural op kind unknown to this build");
      }
      op.kind = static_cast<StructuralOpKind>(op_kind);
      SPAUTH_RETURN_IF_ERROR(in->ReadU32(&op.u));
      SPAUTH_RETURN_IF_ERROR(in->ReadU32(&op.v));
      SPAUTH_RETURN_IF_ERROR(in->ReadF64(&op.weight));
      SPAUTH_RETURN_IF_ERROR(in->ReadF64(&op.x));
      SPAUTH_RETURN_IF_ERROR(in->ReadF64(&op.y));
      out->structural.push_back(op);
    }
  }
  if (!in->AtEnd()) {
    return Status::Malformed("trailing bytes after wal record");
  }
  return Status::Ok();
}

Result<Wal> Wal::Open(std::string path) {
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd < 0) {
    return Status::Unavailable(std::string("cannot open wal ") + path + ": " +
                               std::strerror(errno));
  }
  return Wal(std::move(path), fd);
}

Wal::Wal(Wal&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(std::exchange(other.fd_, -1)),
      appended_(other.appended_) {}

Wal& Wal::operator=(Wal&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
    }
    path_ = std::move(other.path_);
    fd_ = std::exchange(other.fd_, -1);
    appended_ = other.appended_;
  }
  return *this;
}

Wal::~Wal() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Status Wal::Append(const WalRecord& record) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("wal is not open");
  }
  SPAUTH_FAILPOINT_RETURN("wal/append");
  ByteWriter payload;
  record.Serialize(&payload);
  std::vector<uint8_t> frame;
  AppendFramedRecord(payload.view(), &frame);
  if (SPAUTH_FAILPOINT_TRIGGERED("wal/fsync")) {
    // The crash between write and flush: an arbitrary prefix of the record
    // may have reached the disk. Persist exactly half the frame so replay
    // deterministically sees a torn tail record.
    SPAUTH_RETURN_IF_ERROR(WriteAll(fd_, frame.data(), frame.size() / 2));
    ::fsync(fd_);
    return Status::Unavailable("fail point fired: wal/fsync");
  }
  SPAUTH_RETURN_IF_ERROR(WriteAll(fd_, frame.data(), frame.size()));
  if (::fsync(fd_) != 0) {
    return Status::Unavailable(std::string("wal fsync failed: ") +
                               std::strerror(errno));
  }
  ++appended_;
  return Status::Ok();
}

Status Wal::Reset() {
  if (fd_ < 0) {
    return Status::FailedPrecondition("wal is not open");
  }
  // The crash between the snapshot publish and the truncate: the full log
  // survives next to a snapshot that already absorbed it. Recovery must
  // skip the absorbed prefix and land byte-identical anyway.
  SPAUTH_FAILPOINT_RETURN("wal/reset");
  if (::ftruncate(fd_, 0) != 0) {
    return Status::Unavailable(std::string("wal truncate failed: ") +
                               std::strerror(errno));
  }
  if (::fsync(fd_) != 0) {
    return Status::Unavailable(std::string("wal fsync failed: ") +
                               std::strerror(errno));
  }
  return Status::Ok();
}

Result<WalReplay> Wal::Read(const std::string& path) {
  WalReplay replay;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return replay;  // a log that never existed is an empty log
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  ByteReader reader{std::span<const uint8_t>(bytes)};
  std::vector<uint8_t> payload;
  while (true) {
    const size_t record_start = reader.position();
    const Status frame = ReadFramedRecord(&reader, &payload);
    if (frame.code() == StatusCode::kOutOfRange) {
      break;  // clean end of log
    }
    if (!frame.ok()) {
      // A crash tear can only live at the tail: either the frame header
      // itself is truncated, or the declared frame runs to (or past) the
      // end of the file. A corrupt frame with further bytes BEHIND it is
      // mid-log damage — accepting the prefix would silently drop
      // committed records the file still holds.
      const size_t rem = bytes.size() - record_start;
      if (rem >= 8) {
        const uint32_t len = static_cast<uint32_t>(bytes[record_start]) |
                             static_cast<uint32_t>(bytes[record_start + 1]) << 8 |
                             static_cast<uint32_t>(bytes[record_start + 2]) << 16 |
                             static_cast<uint32_t>(bytes[record_start + 3]) << 24;
        const uint64_t frame_end = static_cast<uint64_t>(record_start) + 8 + len;
        if (frame_end < bytes.size()) {
          return Status::DataLoss(
              "corrupt wal record followed by " +
              std::to_string(bytes.size() - frame_end) +
              " more bytes — mid-log damage, not a crash tail");
        }
      }
      replay.torn_tail = true;  // genuine tail tear: stop, keep the prefix
      break;
    }
    WalRecord record;
    ByteReader record_reader{std::span<const uint8_t>(payload)};
    const Status decode = WalRecord::DeserializeInto(&record_reader, &record);
    if (!decode.ok()) {
      // The CRC passed, so the frame was written whole — this cannot be a
      // crash tear. An unknown kind or undecodable bytes inside a clean
      // frame means damage (or a future format): refuse, never skip.
      if (decode.code() == StatusCode::kDataLoss) {
        return decode;
      }
      return Status::DataLoss("undecodable wal record inside a CRC-clean frame: " +
                              std::string(decode.message()));
    }
    replay.records.push_back(std::move(record));
    replay.valid_bytes = reader.position();
  }
  return replay;
}

}  // namespace spauth
