#include "core/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "util/crc32.h"
#include "util/failpoint.h"

namespace spauth {

namespace {

Status WriteAll(int fd, const uint8_t* data, size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::Unavailable(std::string("wal write failed: ") +
                                 std::strerror(errno));
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

void WalRecord::Serialize(ByteWriter* out) const {
  out->WriteU32(base_version);
  out->WriteU32(static_cast<uint32_t>(updates.size()));
  for (const EdgeWeightUpdate& u : updates) {
    out->WriteU32(u.u);
    out->WriteU32(u.v);
    out->WriteF64(u.new_weight);
  }
}

Status WalRecord::DeserializeInto(ByteReader* in, WalRecord* out) {
  SPAUTH_RETURN_IF_ERROR(in->ReadU32(&out->base_version));
  uint32_t count = 0;
  SPAUTH_RETURN_IF_ERROR(in->ReadU32(&count));
  if (static_cast<size_t>(count) * 16 > in->remaining()) {
    return Status::Malformed("wal record update count exceeds payload");
  }
  out->updates.clear();
  out->updates.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    EdgeWeightUpdate u;
    SPAUTH_RETURN_IF_ERROR(in->ReadU32(&u.u));
    SPAUTH_RETURN_IF_ERROR(in->ReadU32(&u.v));
    SPAUTH_RETURN_IF_ERROR(in->ReadF64(&u.new_weight));
    out->updates.push_back(u);
  }
  if (!in->AtEnd()) {
    return Status::Malformed("trailing bytes after wal record");
  }
  return Status::Ok();
}

Result<Wal> Wal::Open(std::string path) {
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd < 0) {
    return Status::Unavailable(std::string("cannot open wal ") + path + ": " +
                               std::strerror(errno));
  }
  return Wal(std::move(path), fd);
}

Wal::Wal(Wal&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(std::exchange(other.fd_, -1)),
      appended_(other.appended_) {}

Wal& Wal::operator=(Wal&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
    }
    path_ = std::move(other.path_);
    fd_ = std::exchange(other.fd_, -1);
    appended_ = other.appended_;
  }
  return *this;
}

Wal::~Wal() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Status Wal::Append(const WalRecord& record) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("wal is not open");
  }
  SPAUTH_FAILPOINT_RETURN("wal/append");
  ByteWriter payload;
  record.Serialize(&payload);
  std::vector<uint8_t> frame;
  AppendFramedRecord(payload.view(), &frame);
  if (SPAUTH_FAILPOINT_TRIGGERED("wal/fsync")) {
    // The crash between write and flush: an arbitrary prefix of the record
    // may have reached the disk. Persist exactly half the frame so replay
    // deterministically sees a torn tail record.
    SPAUTH_RETURN_IF_ERROR(WriteAll(fd_, frame.data(), frame.size() / 2));
    ::fsync(fd_);
    return Status::Unavailable("fail point fired: wal/fsync");
  }
  SPAUTH_RETURN_IF_ERROR(WriteAll(fd_, frame.data(), frame.size()));
  if (::fsync(fd_) != 0) {
    return Status::Unavailable(std::string("wal fsync failed: ") +
                               std::strerror(errno));
  }
  ++appended_;
  return Status::Ok();
}

Status Wal::Reset() {
  if (fd_ < 0) {
    return Status::FailedPrecondition("wal is not open");
  }
  // The crash between the snapshot publish and the truncate: the full log
  // survives next to a snapshot that already absorbed it. Recovery must
  // skip the absorbed prefix and land byte-identical anyway.
  SPAUTH_FAILPOINT_RETURN("wal/reset");
  if (::ftruncate(fd_, 0) != 0) {
    return Status::Unavailable(std::string("wal truncate failed: ") +
                               std::strerror(errno));
  }
  if (::fsync(fd_) != 0) {
    return Status::Unavailable(std::string("wal fsync failed: ") +
                               std::strerror(errno));
  }
  return Status::Ok();
}

Result<WalReplay> Wal::Read(const std::string& path) {
  WalReplay replay;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return replay;  // a log that never existed is an empty log
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  ByteReader reader{std::span<const uint8_t>(bytes)};
  std::vector<uint8_t> payload;
  while (true) {
    const Status frame = ReadFramedRecord(&reader, &payload);
    if (frame.code() == StatusCode::kOutOfRange) {
      break;  // clean end of log
    }
    if (!frame.ok()) {
      replay.torn_tail = true;  // torn/corrupt record: stop, keep the prefix
      break;
    }
    WalRecord record;
    ByteReader record_reader{std::span<const uint8_t>(payload)};
    if (!WalRecord::DeserializeInto(&record_reader, &record).ok()) {
      // CRC-clean but undecodable: corrupt all the same.
      replay.torn_tail = true;
      break;
    }
    replay.records.push_back(std::move(record));
    replay.valid_bytes = reader.position();
  }
  return replay;
}

}  // namespace spauth
