// MethodEngine — the uniform three-party facade over the four verification
// methods. One engine owns the whole pipeline for a (graph, method,
// parameters) triple:
//
//   owner:    BuildXxxAds (timed; the "offline construction" of Figure 8c)
//             + ApplyEdgeWeightUpdate (live snapshot rotation, DIJ only)
//   provider: Answer(query) -> serialized ProofBundle with size accounting
//   client:   Verify(query, bundle) -> VerifyOutcome (only public key used)
//
// The bundle's bytes are the real wire message (certificate + answer); the
// benches report exactly these sizes. TamperedAnswer simulates the paper's
// threat model: a provider that alters results or proofs in six ways.
//
// Serving is snapshot-based (core/engine_state.h): every query serves
// from an acquired immutable EngineState, so owner-side updates rotate in
// a new snapshot *while shards serve traffic* — no quiesce anywhere, no
// mutex on any read path. Batch workers pin one snapshot per worker and
// revalidate by epoch (a single acquire load per query in steady state);
// the single-query surfaces pay the slot's two-instruction spinlock.
#ifndef SPAUTH_CORE_ENGINE_H_
#define SPAUTH_CORE_ENGINE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/algosp.h"
#include "core/certificate.h"
#include "core/dij.h"
#include "core/engine_state.h"
#include "core/verify_outcome.h"
#include "graph/generator.h"
#include "graph/path.h"
#include "graph/workload.h"
#include "hints/landmarks.h"
#include "util/proof_cache.h"
#include "util/status.h"

namespace spauth {

struct VerifyWorkspace;  // core/verify_workspace.h
class Wal;               // core/wal.h

/// Adversarial mutations of a provider answer (core/engine.cc documents the
/// rejection each must trigger).
enum class TamperKind {
  kSuboptimalPath,      // return a longer real path with "honest" proofs
  kTamperWeight,        // alter an edge weight inside a shipped tuple
  kDropTuple,           // omit a tuple, regenerate a root-valid Merkle proof
  kForgeDistanceValue,  // alter an authenticated distance entry
  kBogusSignature,      // corrupt the certificate signature
  kPhantomEdge,         // report a path over a non-existent edge
};
std::string_view ToString(TamperKind kind);

inline constexpr TamperKind kAllTamperKinds[] = {
    TamperKind::kSuboptimalPath,     TamperKind::kTamperWeight,
    TamperKind::kDropTuple,          TamperKind::kForgeDistanceValue,
    TamperKind::kBogusSignature,     TamperKind::kPhantomEdge,
};

/// Size/item accounting split into shortest-path proof (S-prf) and
/// integrity proof (T-prf) per the paper's Figure 8a/8b convention; see
/// EXPERIMENTS.md for the exact attribution rules.
struct ProofStats {
  size_t sp_bytes = 0;
  size_t t_bytes = 0;
  size_t sp_items = 0;  // tuples + distance entries
  size_t t_items = 0;   // Merkle digests
  size_t total_bytes() const { return sp_bytes + t_bytes; }
};

/// One query's reply: the result path/distance, the full wire bytes
/// (certificate + proof), and the accounting.
struct ProofBundle {
  Path path;
  double distance = 0;
  std::vector<uint8_t> bytes;
  ProofStats stats;
};

struct EngineOptions {
  MethodKind method = MethodKind::kDij;
  NodeOrdering ordering = NodeOrdering::kHilbert;
  uint32_t fanout = 2;
  HashAlgorithm alg = HashAlgorithm::kSha1;
  uint64_t seed = 1;
  // LDM.
  uint32_t num_landmarks = 40;
  int quantization_bits = 12;
  double compression_xi = 50;
  LandmarkStrategy landmark_strategy = LandmarkStrategy::kFarthest;
  // HYP.
  uint32_t num_cells = 49;
  uint32_t distance_fanout = 2;
  // FULL.
  bool full_use_floyd_warshall = true;
  /// The provider's algosp choice (Algorithm 1); does not affect proofs.
  SpAlgorithm provider_algorithm = SpAlgorithm::kDijkstra;

  /// Server-side proof cache: memoizes assembled bundles by canonical
  /// query, so a repeated query is served the exact bytes assembled the
  /// first time (byte-identical by construction — the answer path is
  /// deterministic). Each snapshot owns a fresh cache; rotation retires
  /// the old snapshot's cache wholesale with the snapshot.
  bool enable_proof_cache = false;
  size_t proof_cache_capacity = 4096;  // total entries across shards
  size_t proof_cache_shards = 8;
};

class MethodEngine {
 public:
  virtual ~MethodEngine();

  virtual MethodKind kind() const = 0;
  std::string_view name() const { return ToString(kind()); }

  /// Wall-clock seconds the owner spent building the ADS + hints.
  double construction_seconds() const { return construction_seconds_; }
  /// Called by MakeEngine after the timed build; not part of the API.
  void set_construction_seconds(double seconds) {
    construction_seconds_ = seconds;
  }

  /// Bytes of ADS + hints stored at the provider (current snapshot).
  virtual size_t storage_bytes() const = 0;

  /// The current published snapshot: graph, ADS, certificate and proof
  /// cache, all consistent with each other. Readers that need more than
  /// one look at engine state across a possible rotation should acquire
  /// once and use the handle. The handle must not outlive the engine.
  /// (Batch workers use the epoch-revalidated fast path internally and
  /// only pay this acquire after an actual rotation.)
  std::shared_ptr<const EngineState> CurrentState() const {
    return slot_.Acquire();
  }

  /// The current snapshot's certificate, by value: a reference into the
  /// snapshot could dangle the moment a rotation retires it, and this is
  /// a public accessor on an engine whose whole point is update-while-
  /// serve. Hot readers needing the certificate without the copy acquire
  /// CurrentState() and read it off the pinned snapshot.
  Certificate certificate() const { return CurrentState()->certificate; }

  /// Monotone snapshot counter (initial build publishes epoch 1).
  uint64_t current_epoch() const { return CurrentState()->epoch; }

  /// Snapshots currently alive: the published one plus retired snapshots
  /// still pinned by in-flight readers (or held handles). 1 when fully
  /// drained; the excess over 1 is the snapshot-drain depth the
  /// bench_throughput --update-rate mode reports.
  size_t live_snapshots() const {
    return static_cast<size_t>(live_states_.load(std::memory_order_acquire));
  }

  /// Provider role. The workspace form is the query-serving fast path: a
  /// caller keeps one SearchWorkspace per serving thread and the engine
  /// reuses its scratch arrays across the query stream. The plain form
  /// wraps it with a throwaway workspace. When the proof cache is enabled
  /// a repeated query returns the memoized bundle without touching the
  /// workspace.
  Result<ProofBundle> Answer(const Query& query) const;
  Result<ProofBundle> Answer(const Query& query, SearchWorkspace& ws) const;

  /// Zero-copy provider role: the returned bundle is shared with the proof
  /// cache, so a cache hit never copies the assembled wire bytes — every
  /// repeat of a query yields the *same* ProofBundle object until a
  /// snapshot rotation retires the cache, and callers encode straight from
  /// `bundle->bytes`. With the cache disabled each call returns a freshly
  /// assembled bundle (still shared so consumers are uniform). Answer() is
  /// the value-semantics wrapper over this.
  Result<std::shared_ptr<const ProofBundle>> AnswerShared(
      const Query& query) const;
  Result<std::shared_ptr<const ProofBundle>> AnswerShared(
      const Query& query, SearchWorkspace& ws) const;

  /// The batch-serving fast path: revalidates the caller-pinned snapshot
  /// `*snap` against the published epoch (one acquire load when no
  /// rotation landed — no lock, no refcount traffic) and serves from it.
  /// Callers keep one pinned snapshot per worker next to the
  /// SearchWorkspace; both engine and sharded batch loops use this.
  Result<std::shared_ptr<const ProofBundle>> AnswerShared(
      const Query& query, SearchWorkspace& ws,
      std::shared_ptr<const EngineState>* snap) const;

  /// Answers a query stream on a small internal worker pool, one reused
  /// workspace per worker (num_threads == 0 picks a host default). The
  /// result vector is parallel to `queries`; per-query failures surface as
  /// error Results without aborting the batch.
  std::vector<Result<ProofBundle>> AnswerBatch(std::span<const Query> queries,
                                               size_t num_threads = 0) const;

  /// Malicious-provider role; Unimplemented when the mutation does not
  /// apply to this method, NotFound when the instance offers no opportunity
  /// (e.g. no alternative path exists). Never consults the proof cache.
  virtual Result<ProofBundle> TamperedAnswer(const Query& query,
                                             TamperKind kind) const = 0;

  /// Client role: full decode + verification from the wire bytes. The
  /// workspace form is the verification fast path (one VerifyWorkspace per
  /// verifying thread); the plain form wraps it with a throwaway one.
  VerifyOutcome Verify(const Query& query, const ProofBundle& bundle) const;
  virtual VerifyOutcome Verify(const Query& query, const ProofBundle& bundle,
                               VerifyWorkspace& ws) const = 0;

  /// Owner-side live maintenance: absorbs the whole batch of edge-weight
  /// changes into ONE copy-on-write rotation — a structural clone of the
  /// current snapshot's graph and ADS (pointer spines only; every chunk is
  /// shared until touched), the affected tuples refreshed with their
  /// Merkle paths incrementally re-hashed, ONE certificate signature at
  /// version + k, one atomic publish. Concurrent AnswerBatch streams keep
  /// serving the old snapshot until they pick up the new one; the old
  /// snapshot (and its whole proof cache) drains when its last in-flight
  /// reader finishes — retired snapshots alias the chunks the new one
  /// shares, which stay immutable for as long as anyone holds them.
  /// Returns the newly published certificate version (the current version
  /// for an empty batch, which publishes nothing). FailedPrecondition for
  /// methods whose hints require a rebuild (FULL/LDM/HYP) — the published
  /// snapshot and its cache are left untouched. Writers may call this
  /// concurrently; rotations serialize internally.
  virtual Result<uint32_t> ApplyEdgeWeightUpdates(
      const RsaKeyPair& keys, std::span<const EdgeWeightUpdate> updates);

  /// Single-update wrapper: a batch of one (re-sign at version + 1).
  Result<uint32_t> ApplyEdgeWeightUpdate(const RsaKeyPair& keys, NodeId u,
                                         NodeId v, double new_weight);

  /// Forest-mode rotation: absorbs the batch exactly like
  /// ApplyEdgeWeightUpdates — same copy-on-write clone, WAL barrier and
  /// atomic publish, same version + k — but the new certificate is left
  /// UNSIGNED. Under a fleet forest certificate the per-shard signature is
  /// redundant: ShardedEngine signs the forest root once per epoch and the
  /// client authenticates the certificate body through its forest path
  /// (core/forest_certificate.h). Never serve an unsigned certificate
  /// without a forest publish following it. FailedPrecondition for non-DIJ
  /// methods. Note durable recovery (core/snapshot_store.h) re-signs on
  /// WAL replay, so recovered shards always verify standalone.
  virtual Result<uint32_t> ApplyEdgeWeightUpdatesUnsigned(
      std::span<const EdgeWeightUpdate> updates);

  /// Structural rotation: absorbs a batch of {AddEdge, RemoveEdge,
  /// AddVertex} ops into ONE copy-on-write rotation with the same
  /// publish/drain/WAL contract as ApplyEdgeWeightUpdates — one typed WAL
  /// record, one signature at version + k, one atomic publish. The cloned
  /// graph splices its CSR, the ADS refreshes/appends the affected tuples
  /// and Merkle leaves (the tree grows a leaf per AddVertex), and frozen
  /// pre-structural snapshots keep serving their own shape while they
  /// drain. FailedPrecondition for FULL/LDM/HYP — their hints require a
  /// rebuild on any shape change.
  virtual Result<uint32_t> ApplyStructuralUpdates(
      const RsaKeyPair& keys, std::span<const StructuralUpdate> ops);

  /// Single-op wrapper: a batch of one (re-sign at version + 1).
  Result<uint32_t> ApplyStructuralUpdate(const RsaKeyPair& keys,
                                         const StructuralUpdate& op);

  /// Forest-mode structural rotation: unsigned certificate body, forest
  /// publish must follow (see ApplyEdgeWeightUpdatesUnsigned).
  virtual Result<uint32_t> ApplyStructuralUpdatesUnsigned(
      std::span<const StructuralUpdate> ops);

  /// Attaches a write-ahead log (core/wal.h): every subsequent update
  /// batch is appended — and flushed to stable storage — BEFORE its
  /// rotation publishes, so a crash never loses an acknowledged update.
  /// Non-owning (`wal` must outlive the engine or be detached with
  /// nullptr); effective for DIJ, the only method that takes updates.
  /// Attach/detach while no update is in flight.
  void AttachWal(Wal* wal) { wal_.store(wal, std::memory_order_release); }

  /// Serializes the current snapshot's durable image (signed certificate,
  /// every extended-tuple, the leaf order) — the payload the snapshot
  /// store (core/snapshot_store.h) frames, checksums and publishes
  /// atomically. FailedPrecondition for non-DIJ methods.
  virtual Status SerializeDurableState(ByteWriter* out) const;

  /// Owner-side heal: re-publishes `source`'s current snapshot on THIS
  /// engine. The adopted state is pointer-shared (graph blocks, tuple
  /// chunks, Merkle levels, the proof-cache-free spine), so the cost is a
  /// spine copy, not a payload clone — which is what lets ShardedEngine
  /// re-sync a replica frozen by a torn rotation from a healthy sibling
  /// without waiting for the next full rotation. No-op (returning the
  /// current version) when this engine is already at or past `source`'s
  /// version. Both engines must serve the same certified DIJ network;
  /// FailedPrecondition otherwise.
  virtual Result<uint32_t> AdoptStateFrom(const MethodEngine& source);

  /// Cumulative payload bytes the rotations' copy-on-write clones actually
  /// duplicated (adjacency blocks + tuple chunks + Merkle path chunks, in
  /// the same units as Graph::MemoryFootprintBytes / storage_bytes).
  /// Structural sharing keeps this O(f log_f V) per rotation; the bench's
  /// rotation_clone_bytes metric compares it against the full-clone
  /// baseline of graph footprint + ADS storage.
  uint64_t rotation_clone_bytes() const {
    return rotation_clone_bytes_.load(std::memory_order_relaxed);
  }

  bool proof_cache_enabled() const { return CurrentState()->cache != nullptr; }
  /// Aggregate hit/miss/byte counters: the current snapshot's cache plus
  /// the folded books of every drained snapshot's cache. At any quiescent
  /// point (all retired snapshots drained) the books conserve:
  /// insertions == evictions + cleared + entries.
  ProofCacheStats proof_cache_stats() const;

 protected:
  /// Captures the proof-cache configuration from `options` before the
  /// derived constructor publishes the initial snapshot, so every
  /// snapshot (the first included) is born with its cache attached —
  /// published snapshots are never mutated, not even at setup.
  explicit MethodEngine(const EngineOptions& options);

  /// The uncached provider answer, served entirely from `state` (each
  /// engine downcasts to its own derived EngineState).
  virtual Result<ProofBundle> AnswerUncached(const EngineState& state,
                                             const Query& query,
                                             SearchWorkspace& ws) const = 0;

  /// Serializes snapshot rotations: a writer holds this from reading the
  /// current snapshot through PublishState so concurrent updates compose
  /// instead of losing each other's changes.
  std::unique_lock<std::mutex> LockForUpdate() {
    return std::unique_lock<std::mutex>(update_mu_);
  }

  /// Stamps the epoch, attaches a fresh proof cache when caching is
  /// enabled, and atomically publishes `state` as the current snapshot
  /// (release semantics). The previous snapshot starts draining.
  void PublishState(std::unique_ptr<EngineState> state);

  /// Folds one successful rotation's copy-on-write byte count into the
  /// engine's cumulative rotation_clone_bytes().
  void AddRotationCloneBytes(size_t bytes) {
    rotation_clone_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }

  /// The attached write-ahead log, or nullptr (derived update paths
  /// append to it before publishing).
  Wal* attached_wal() const { return wal_.load(std::memory_order_acquire); }

 private:
  struct StateRetirer;  // shared_ptr deleter: folds cache books on drain

  Result<std::shared_ptr<const ProofBundle>> AnswerOnState(
      const EngineState& state, const Query& query, SearchWorkspace& ws) const;
  /// Value-semantics serving from an already-acquired snapshot (the batch
  /// fast path pins one snapshot per worker and revalidates by epoch).
  Result<ProofBundle> AnswerOn(const EngineState& state, const Query& query,
                               SearchWorkspace& ws) const;

  /// Drain hook: the last reference to a snapshot dropped. Folds its
  /// cache's counters into retired_ (resident entries count as cleared —
  /// the rotation retired them wholesale) and decrements the live count.
  void OnStateDrained(const EngineState& state) const;

  double construction_seconds_ = 0;

  // Proof-cache configuration applied to every published snapshot.
  bool cache_enabled_ = false;
  size_t cache_capacity_ = 0;
  size_t cache_shards_ = 0;

  std::atomic<Wal*> wal_{nullptr};          // non-owning durability hook
  std::mutex update_mu_;                    // serializes rotations
  std::atomic<uint64_t> epoch_{0};          // last published epoch
  std::atomic<uint64_t> rotation_clone_bytes_{0};
  mutable std::atomic<int64_t> live_states_{0};
  mutable std::mutex retired_mu_;
  mutable ProofCacheStats retired_;         // folded drained-cache books

  // Declared last so it is destroyed first: releasing the final snapshot
  // runs OnStateDrained, which touches the members above.
  EngineStateSlot slot_;
};

/// Builds the ADS/hints for `options.method` over `g` (which must outlive
/// the engine) and returns the ready three-party engine.
Result<std::unique_ptr<MethodEngine>> MakeEngine(const Graph& g,
                                                 const EngineOptions& options,
                                                 const RsaKeyPair& keys);

/// Builds a DIJ engine directly from already-verified recovered state
/// (core/snapshot_store.h) instead of re-deriving the ADS from the graph —
/// the recovery path. `options.method` must be kDij.
Result<std::unique_ptr<MethodEngine>> MakeDijEngineFromState(
    const EngineOptions& options, std::shared_ptr<const Graph> graph,
    DijAds ads, RsaPublicKey owner_key);

/// All four methods in the paper's presentation order.
inline constexpr MethodKind kAllMethods[] = {MethodKind::kDij,
                                             MethodKind::kFull,
                                             MethodKind::kLdm,
                                             MethodKind::kHyp};

}  // namespace spauth

#endif  // SPAUTH_CORE_ENGINE_H_
