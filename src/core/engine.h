// MethodEngine — the uniform three-party facade over the four verification
// methods. One engine owns the whole pipeline for a (graph, method,
// parameters) triple:
//
//   owner:    BuildXxxAds (timed; the "offline construction" of Figure 8c)
//   provider: Answer(query) -> serialized ProofBundle with size accounting
//   client:   Verify(query, bundle) -> VerifyOutcome (only public key used)
//
// The bundle's bytes are the real wire message (certificate + answer); the
// benches report exactly these sizes. TamperedAnswer simulates the paper's
// threat model: a provider that alters results or proofs in six ways.
#ifndef SPAUTH_CORE_ENGINE_H_
#define SPAUTH_CORE_ENGINE_H_

#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "core/algosp.h"
#include "core/certificate.h"
#include "core/verify_outcome.h"
#include "graph/generator.h"
#include "graph/path.h"
#include "graph/workload.h"
#include "hints/landmarks.h"
#include "util/proof_cache.h"
#include "util/status.h"

namespace spauth {

struct VerifyWorkspace;  // core/verify_workspace.h

/// Adversarial mutations of a provider answer (core/engine.cc documents the
/// rejection each must trigger).
enum class TamperKind {
  kSuboptimalPath,      // return a longer real path with "honest" proofs
  kTamperWeight,        // alter an edge weight inside a shipped tuple
  kDropTuple,           // omit a tuple, regenerate a root-valid Merkle proof
  kForgeDistanceValue,  // alter an authenticated distance entry
  kBogusSignature,      // corrupt the certificate signature
  kPhantomEdge,         // report a path over a non-existent edge
};
std::string_view ToString(TamperKind kind);

inline constexpr TamperKind kAllTamperKinds[] = {
    TamperKind::kSuboptimalPath,     TamperKind::kTamperWeight,
    TamperKind::kDropTuple,          TamperKind::kForgeDistanceValue,
    TamperKind::kBogusSignature,     TamperKind::kPhantomEdge,
};

/// Size/item accounting split into shortest-path proof (S-prf) and
/// integrity proof (T-prf) per the paper's Figure 8a/8b convention; see
/// EXPERIMENTS.md for the exact attribution rules.
struct ProofStats {
  size_t sp_bytes = 0;
  size_t t_bytes = 0;
  size_t sp_items = 0;  // tuples + distance entries
  size_t t_items = 0;   // Merkle digests
  size_t total_bytes() const { return sp_bytes + t_bytes; }
};

/// One query's reply: the result path/distance, the full wire bytes
/// (certificate + proof), and the accounting.
struct ProofBundle {
  Path path;
  double distance = 0;
  std::vector<uint8_t> bytes;
  ProofStats stats;
};

struct EngineOptions {
  MethodKind method = MethodKind::kDij;
  NodeOrdering ordering = NodeOrdering::kHilbert;
  uint32_t fanout = 2;
  HashAlgorithm alg = HashAlgorithm::kSha1;
  uint64_t seed = 1;
  // LDM.
  uint32_t num_landmarks = 40;
  int quantization_bits = 12;
  double compression_xi = 50;
  LandmarkStrategy landmark_strategy = LandmarkStrategy::kFarthest;
  // HYP.
  uint32_t num_cells = 49;
  uint32_t distance_fanout = 2;
  // FULL.
  bool full_use_floyd_warshall = true;
  /// The provider's algosp choice (Algorithm 1); does not affect proofs.
  SpAlgorithm provider_algorithm = SpAlgorithm::kDijkstra;

  /// Server-side proof cache: memoizes assembled bundles by canonical
  /// query, so a repeated query is served the exact bytes assembled the
  /// first time (byte-identical by construction — the answer path is
  /// deterministic). Invalidated whenever the certificate version changes
  /// (owner-side updates re-sign with version + 1).
  bool enable_proof_cache = false;
  size_t proof_cache_capacity = 4096;  // total entries across shards
  size_t proof_cache_shards = 8;
};

class MethodEngine {
 public:
  virtual ~MethodEngine() = default;

  virtual MethodKind kind() const = 0;
  std::string_view name() const { return ToString(kind()); }

  /// Wall-clock seconds the owner spent building the ADS + hints.
  double construction_seconds() const { return construction_seconds_; }
  /// Called by MakeEngine after the timed build; not part of the API.
  void set_construction_seconds(double seconds) {
    construction_seconds_ = seconds;
  }

  /// Bytes of ADS + hints stored at the provider.
  virtual size_t storage_bytes() const = 0;

  virtual const Certificate& certificate() const = 0;

  /// Provider role. The workspace form is the query-serving fast path: a
  /// caller keeps one SearchWorkspace per serving thread and the engine
  /// reuses its scratch arrays across the query stream. The plain form
  /// wraps it with a throwaway workspace. When the proof cache is enabled
  /// a repeated query returns the memoized bundle without touching the
  /// workspace.
  Result<ProofBundle> Answer(const Query& query) const;
  Result<ProofBundle> Answer(const Query& query, SearchWorkspace& ws) const;

  /// Zero-copy provider role: the returned bundle is shared with the proof
  /// cache, so a cache hit never copies the assembled wire bytes — every
  /// repeat of a query yields the *same* ProofBundle object until an
  /// owner-side update invalidates it, and callers encode straight from
  /// `bundle->bytes`. With the cache disabled each call returns a freshly
  /// assembled bundle (still shared so consumers are uniform). Answer() is
  /// the value-semantics wrapper over this.
  Result<std::shared_ptr<const ProofBundle>> AnswerShared(
      const Query& query) const;
  Result<std::shared_ptr<const ProofBundle>> AnswerShared(
      const Query& query, SearchWorkspace& ws) const;

  /// Answers a query stream on a small internal worker pool, one reused
  /// workspace per worker (num_threads == 0 picks a host default). The
  /// result vector is parallel to `queries`; per-query failures surface as
  /// error Results without aborting the batch.
  std::vector<Result<ProofBundle>> AnswerBatch(std::span<const Query> queries,
                                               size_t num_threads = 0) const;

  /// Malicious-provider role; Unimplemented when the mutation does not
  /// apply to this method, NotFound when the instance offers no opportunity
  /// (e.g. no alternative path exists). Never consults the proof cache.
  virtual Result<ProofBundle> TamperedAnswer(const Query& query,
                                             TamperKind kind) const = 0;

  /// Client role: full decode + verification from the wire bytes. The
  /// workspace form is the verification fast path (one VerifyWorkspace per
  /// verifying thread); the plain form wraps it with a throwaway one.
  VerifyOutcome Verify(const Query& query, const ProofBundle& bundle) const;
  virtual VerifyOutcome Verify(const Query& query, const ProofBundle& bundle,
                               VerifyWorkspace& ws) const = 0;

  /// Owner-side maintenance through the engine: applies an edge-weight
  /// change to `g` (which must be the graph the engine was built over) and
  /// the ADS via core/updates.h, re-signing with a bumped version, and
  /// invalidates the proof cache. FailedPrecondition for methods whose
  /// hints require a rebuild (FULL/LDM/HYP).
  virtual Status ApplyEdgeWeightUpdate(Graph* g, const RsaKeyPair& keys,
                                       NodeId u, NodeId v, double new_weight);

  /// Enables the serving-side proof cache (normally wired up by MakeEngine
  /// from EngineOptions).
  void EnableProofCache(size_t capacity, size_t shards);
  bool proof_cache_enabled() const { return cache_ != nullptr; }
  /// Aggregate hit/miss/byte counters; zeros when the cache is disabled.
  ProofCacheStats proof_cache_stats() const;

 protected:
  /// The uncached provider answer; the base Answer() adds the cache layer.
  virtual Result<ProofBundle> AnswerUncached(const Query& query,
                                             SearchWorkspace& ws) const = 0;

  /// Drops every cached bundle (after an ADS mutation).
  void InvalidateProofCache() const;

  double construction_seconds_ = 0;

 private:
  // Bundles are cached per certificate version; a version change (owner
  // update re-sign) clears the cache lazily on the next Answer. Updates
  // must quiesce serving (the ADS itself is mutated unsynchronized), so
  // the atomic only has to make the sequential update-then-serve pattern
  // race-free against a concurrent AnswerBatch that follows it.
  mutable std::unique_ptr<ProofCache<ProofBundle>> cache_;
  mutable std::atomic<uint32_t> cache_version_{0};
};

/// Builds the ADS/hints for `options.method` over `g` (which must outlive
/// the engine) and returns the ready three-party engine.
Result<std::unique_ptr<MethodEngine>> MakeEngine(const Graph& g,
                                                 const EngineOptions& options,
                                                 const RsaKeyPair& keys);

/// All four methods in the paper's presentation order.
inline constexpr MethodKind kAllMethods[] = {MethodKind::kDij,
                                             MethodKind::kFull,
                                             MethodKind::kLdm,
                                             MethodKind::kHyp};

}  // namespace spauth

#endif  // SPAUTH_CORE_ENGINE_H_
