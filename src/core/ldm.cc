#include "core/ldm.h"

#include <algorithm>
#include <cmath>

#include "core/client_search.h"
#include "core/verify_workspace.h"
#include "graph/dijkstra.h"

namespace spauth {

Result<LdmAds> BuildLdmAds(const Graph& g, const LdmOptions& options,
                           const RsaKeyPair& keys) {
  SPAUTH_ASSIGN_OR_RETURN(
      std::vector<NodeId> landmarks,
      SelectLandmarks(g, options.num_landmarks, options.strategy,
                      options.seed));
  SPAUTH_ASSIGN_OR_RETURN(LandmarkTable table,
                          LandmarkTable::Build(g, std::move(landmarks)));
  SPAUTH_ASSIGN_OR_RETURN(
      QuantizedVectorTable qtable,
      QuantizedVectorTable::Build(table, options.quantization_bits));
  SPAUTH_ASSIGN_OR_RETURN(
      CompressedVectors compressed,
      CompressDistanceVectors(g, table, qtable, options.compression_xi));

  // Eq. 4 tuples: representatives carry their code vector, compressed nodes
  // carry (theta, epsilon).
  std::vector<ExtendedTuple> tuples = BuildBaseTuples(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ExtendedTuple& t = tuples[v];
    t.has_landmark_data = true;
    if (compressed.IsRepresentative(v)) {
      t.is_representative = true;
      auto codes = qtable.CodesOf(v);
      t.qcodes.assign(codes.begin(), codes.end());
    } else {
      t.is_representative = false;
      t.ref_node = compressed.ref[v];
      t.ref_error = compressed.eps[v];
    }
  }

  std::vector<NodeId> order = ComputeOrdering(g, options.ordering, options.seed);
  SPAUTH_ASSIGN_OR_RETURN(
      NetworkAds network,
      NetworkAds::Build(std::move(tuples), std::move(order), options.fanout,
                        options.alg));

  MethodParams params;
  params.method = MethodKind::kLdm;
  params.alg = options.alg;
  params.fanout = options.fanout;
  params.ordering = options.ordering;
  params.num_network_leaves = static_cast<uint32_t>(network.num_nodes());
  params.has_landmarks = true;
  params.num_landmarks = options.num_landmarks;
  params.lambda = qtable.params().lambda;
  SPAUTH_ASSIGN_OR_RETURN(
      Certificate cert,
      MakeCertificate(keys, std::move(params), network.root(), Digest()));

  LdmAds ads{std::move(network), std::move(cert), qtable.params(),
             std::move(compressed.ref), std::move(compressed.eps)};
  return ads;
}

double LdmProvider::LowerBound(NodeId u, NodeId target) const {
  const NetworkAds& network = ads_->network;
  const ExtendedTuple& rep_u = network.tuple(ads_->ref[u]);
  const ExtendedTuple& rep_t = network.tuple(ads_->ref[target]);
  const double loose = LooseLowerBoundFromCodes(rep_u.qcodes, rep_t.qcodes,
                                                ads_->qparams.lambda);
  return std::max(0.0, loose - (ads_->eps[u] + ads_->eps[target]));
}

Result<LdmAnswer> LdmProvider::Answer(const Query& query) const {
  SearchWorkspace ws;
  return Answer(query, ws);
}

Result<LdmAnswer> LdmProvider::Answer(const Query& query,
                                      SearchWorkspace& ws) const {
  if (!g_->IsValidNode(query.source) || !g_->IsValidNode(query.target) ||
      query.source == query.target) {
    return Status::InvalidArgument("bad query endpoints");
  }
  PathSearchResult sp =
      RunShortestPath(*g_, query.source, query.target, algosp_, ws);
  if (!sp.reachable) {
    return Status::NotFound("target not reachable from source");
  }
  const double limit = sp.distance + ProviderSlack(sp.distance);

  // Lemma 2 with the loose compressed bound: S = {v : dist(vs,v) +
  // LB(v,vt) <= D}; only nodes with dist(vs,v) <= D can qualify, so a
  // radius-bounded ball suffices to enumerate candidates.
  DijkstraBall(*g_, query.source, limit, ws, &ws.ball);
  const BallResult& ball = ws.ball;
  std::vector<NodeId>& proof_nodes = ws.node_scratch;
  proof_nodes.clear();
  proof_nodes.reserve(ball.nodes.size() * 2);
  for (size_t i = 0; i < ball.nodes.size(); ++i) {
    const NodeId v = ball.nodes[i];
    if (ball.dist[i] + LowerBound(v, query.target) <= limit) {
      proof_nodes.push_back(v);
      for (const Edge& e : g_->Neighbors(v)) {
        proof_nodes.push_back(e.to);  // Lemma 2 includes all neighbors
      }
    }
  }
  proof_nodes.push_back(query.source);
  proof_nodes.push_back(query.target);
  // Close over representatives so the client can resolve every vector.
  const size_t direct_count = proof_nodes.size();
  for (size_t i = 0; i < direct_count; ++i) {
    proof_nodes.push_back(ads_->ref[proof_nodes[i]]);
  }

  LdmAnswer answer;
  answer.path = std::move(sp.path);
  answer.distance = sp.distance;
  SPAUTH_ASSIGN_OR_RETURN(answer.subgraph,
                          ads_->network.ProveTuples(proof_nodes));
  return answer;
}

void LdmAnswer::Serialize(ByteWriter* out) const {
  out->WriteU32(static_cast<uint32_t>(path.nodes.size()));
  for (NodeId v : path.nodes) {
    out->WriteU32(v);
  }
  out->WriteF64(distance);
  subgraph.Serialize(out);
}

Result<LdmAnswer> LdmAnswer::Deserialize(ByteReader* in) {
  LdmAnswer answer;
  SPAUTH_RETURN_IF_ERROR(DeserializeInto(in, &answer));
  return answer;
}

Status LdmAnswer::DeserializeInto(ByteReader* in, LdmAnswer* out) {
  uint32_t path_len = 0;
  SPAUTH_RETURN_IF_ERROR(in->ReadU32(&path_len));
  if (path_len == 0 || path_len > in->remaining() / 4) {
    return Status::Malformed("bad path length");
  }
  out->path.nodes.resize(path_len);
  for (uint32_t i = 0; i < path_len; ++i) {
    SPAUTH_RETURN_IF_ERROR(in->ReadU32(&out->path.nodes[i]));
  }
  SPAUTH_RETURN_IF_ERROR(in->ReadF64(&out->distance));
  return TupleSetProof::DeserializeInto(in, &out->subgraph);
}

VerifyOutcome VerifyLdmAnswer(const RsaPublicKey& owner_key,
                              const Certificate& cert, const Query& query,
                              const LdmAnswer& answer) {
  VerifyWorkspace ws;
  return VerifyLdmAnswer(owner_key, cert, query, answer, ws);
}

VerifyOutcome VerifyLdmAnswer(const RsaPublicKey& owner_key,
                              const Certificate& cert, const Query& query,
                              const LdmAnswer& answer, VerifyWorkspace& ws) {
  if ((!ws.cert_preauthenticated && !VerifyCertificate(owner_key, cert)) ||
      cert.params.method != MethodKind::kLdm || !cert.params.has_landmarks ||
      !(cert.params.lambda > 0)) {
    return VerifyOutcome::Reject(VerifyFailure::kBadCertificate,
                                 "certificate invalid or wrong method");
  }
  const MerkleSubsetProof& mp = answer.subgraph.proof;
  if (mp.num_leaves != cert.params.num_network_leaves ||
      mp.fanout != cert.params.fanout || mp.alg != cert.params.alg) {
    return VerifyOutcome::Reject(VerifyFailure::kMalformedProof,
                                 "proof shape disagrees with certificate");
  }
  if (Status s = answer.subgraph.VerifyAgainstRoot(cert.network_root,
                                                   ws.merkle,
                                                   &ws.leaf_scratch);
      !s.ok()) {
    return VerifyOutcome::Reject(
        s.code() == StatusCode::kVerificationFailed
            ? VerifyFailure::kRootMismatch
            : VerifyFailure::kMalformedProof,
        s.message());
  }
  if (Status s = answer.subgraph.IndexInto(cert.params.num_network_leaves,
                                           &ws.index);
      !s.ok()) {
    return VerifyOutcome::Reject(VerifyFailure::kMalformedProof, s.message());
  }
  if (!(answer.distance > 0) || !std::isfinite(answer.distance)) {
    return VerifyOutcome::Reject(VerifyFailure::kDistanceMismatch,
                                 "claimed distance must be positive");
  }
  VerifyOutcome path_check = CheckPathAgainstTuples(ws.index, query,
                                                    answer.path,
                                                    answer.distance,
                                                    &ws.path_scratch);
  if (!path_check.accepted) {
    return path_check;
  }
  // Re-run A* with the certified lambda over the authenticated tuples.
  SubgraphSearchOutcome search =
      AStarOverTuples(ws.index, query.source, query.target, answer.distance,
                      cert.params.lambda, ws.search);
  switch (search.code) {
    case SubgraphSearchOutcome::Code::kMissingTuple:
      return VerifyOutcome::Reject(
          VerifyFailure::kIncompleteSubgraph,
          "subgraph proof is missing a required tuple");
    case SubgraphSearchOutcome::Code::kBadTupleData:
      return VerifyOutcome::Reject(
          VerifyFailure::kMalformedProof,
          "tuple lacks required landmark data");
    case SubgraphSearchOutcome::Code::kTargetNotReached:
      return VerifyOutcome::Reject(
          VerifyFailure::kDistanceMismatch,
          "claimed distance is not realized in the verified subgraph");
    case SubgraphSearchOutcome::Code::kOk:
      break;
  }
  if (search.distance < answer.distance - VerifySlack(answer.distance)) {
    return VerifyOutcome::Reject(
        VerifyFailure::kNotShortest,
        "a shorter path exists in the verified subgraph");
  }
  if (search.distance > answer.distance + VerifySlack(answer.distance)) {
    return VerifyOutcome::Reject(VerifyFailure::kDistanceMismatch,
                                 "subgraph distance exceeds the claim");
  }
  return VerifyOutcome::Accept();
}

}  // namespace spauth
