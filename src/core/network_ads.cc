#include "core/network_ads.h"

#include <algorithm>

#include "core/client_search.h"
#include "util/cow.h"
#include "util/failpoint.h"

namespace spauth {

size_t TupleSetProof::TupleBytes() const {
  size_t bytes = 4;  // tuple count
  for (const ExtendedTuple& t : tuples) {
    bytes += t.SerializedSize();
  }
  return bytes;
}

size_t TupleSetProof::IntegrityBytes() const {
  return leaf_indices.size() * 4 + proof.SerializedSize();
}

void TupleSetProof::Serialize(ByteWriter* out) const {
  out->WriteU32(static_cast<uint32_t>(tuples.size()));
  for (size_t i = 0; i < tuples.size(); ++i) {
    tuples[i].Serialize(out);
    out->WriteU32(leaf_indices[i]);
  }
  proof.Serialize(out);
}

Result<TupleSetProof> TupleSetProof::Deserialize(ByteReader* in) {
  TupleSetProof out;
  SPAUTH_RETURN_IF_ERROR(DeserializeInto(in, &out));
  return out;
}

Status TupleSetProof::DeserializeInto(ByteReader* in, TupleSetProof* out) {
  uint32_t count = 0;
  SPAUTH_RETURN_IF_ERROR(in->ReadU32(&count));
  if (count == 0) {
    return Status::Malformed("tuple set proof must contain tuples");
  }
  // Upfront length-vs-remaining check: a tuple encodes to >= 25 bytes, so a
  // hostile count can never trigger a resize larger than the bytes present.
  if (count > in->remaining() / 25) {
    return Status::Malformed("tuple count exceeds buffer");
  }
  out->tuples.resize(count);
  out->leaf_indices.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    SPAUTH_RETURN_IF_ERROR(
        ExtendedTuple::DeserializeInto(in, &out->tuples[i]));
    SPAUTH_RETURN_IF_ERROR(in->ReadU32(&out->leaf_indices[i]));
  }
  return MerkleSubsetProof::DeserializeInto(in, &out->proof);
}

Status TupleSetProof::VerifyAgainstRoot(const Digest& root) const {
  MerkleVerifyScratch scratch;
  ByteWriter encode_scratch;
  return VerifyAgainstRoot(root, scratch, &encode_scratch);
}

Status TupleSetProof::VerifyAgainstRoot(const Digest& root,
                                        MerkleVerifyScratch& scratch,
                                        ByteWriter* encode_scratch) const {
  if (tuples.size() != leaf_indices.size() || tuples.empty()) {
    return Status::Malformed("tuple/index mismatch in proof");
  }
  std::vector<std::pair<uint32_t, Digest>>& leaves = scratch.leaves;
  leaves.clear();
  for (size_t i = 0; i < tuples.size(); ++i) {
    leaves.push_back(
        {leaf_indices[i], tuples[i].LeafDigest(proof.alg, encode_scratch)});
  }
  SPAUTH_RETURN_IF_ERROR(SortLeavesAndCheckUnique(
      &leaves, "duplicate leaf index in tuple proof"));
  // ReconstructMerkleRoot reads `scratch.leaves` through the span and uses
  // only the frame/digest/level members of `scratch` — no aliasing hazard.
  SPAUTH_ASSIGN_OR_RETURN(Digest computed,
                          ReconstructMerkleRoot(proof, leaves, scratch));
  if (!(computed == root)) {
    return Status::VerificationFailed("network root mismatch");
  }
  return Status::Ok();
}

Result<std::unordered_map<NodeId, const ExtendedTuple*>>
TupleSetProof::IndexById() const {
  std::unordered_map<NodeId, const ExtendedTuple*> index;
  index.reserve(tuples.size());
  for (const ExtendedTuple& t : tuples) {
    if (!index.emplace(t.id, &t).second) {
      return Status::Malformed("duplicate node id in tuple proof");
    }
  }
  return index;
}

Status TupleSetProof::IndexInto(uint32_t num_nodes, TupleLane* lane) const {
  lane->Prepare(num_nodes);
  for (const ExtendedTuple& t : tuples) {
    switch (lane->Insert(&t)) {
      case TupleLane::InsertResult::kOk:
        break;
      case TupleLane::InsertResult::kDuplicate:
        return Status::Malformed("duplicate node id in tuple proof");
      case TupleLane::InsertResult::kOutOfRange:
        return Status::Malformed("tuple node id out of certified range");
    }
  }
  return Status::Ok();
}

Result<NetworkAds> NetworkAds::Build(std::vector<ExtendedTuple> tuples,
                                     std::vector<NodeId> order,
                                     uint32_t fanout, HashAlgorithm alg) {
  if (tuples.empty() || order.size() != tuples.size()) {
    return Status::InvalidArgument("tuples/order size mismatch");
  }
  auto leaf_of_node = std::make_shared<const std::vector<uint32_t>>(
      InvertOrdering(order));
  // Leaf hashing funnels through the multi-buffer SHA lanes: encode a
  // window of tuples into one scratch buffer, then hash the window as a
  // batch (HashLeafPayloadsBatch groups equal-length encodings into lanes).
  std::vector<Digest> leaves(tuples.size());
  constexpr size_t kLeafWindow = 256;
  ByteWriter scratch;  // one encoding buffer for all leaf hashes
  std::vector<size_t> offsets;
  std::vector<std::span<const uint8_t>> payloads;
  for (uint32_t begin = 0; begin < order.size(); begin += kLeafWindow) {
    const uint32_t end = std::min<size_t>(order.size(), begin + kLeafWindow);
    scratch.Clear();
    offsets.clear();
    for (uint32_t pos = begin; pos < end; ++pos) {
      offsets.push_back(scratch.size());
      tuples[order[pos]].Serialize(&scratch);
    }
    offsets.push_back(scratch.size());
    payloads.clear();
    for (size_t i = 0; i + 1 < offsets.size(); ++i) {
      payloads.push_back(
          scratch.view().subspan(offsets[i], offsets[i + 1] - offsets[i]));
    }
    HashLeafPayloadsBatch(alg, payloads, leaves.data() + begin);
  }
  SPAUTH_ASSIGN_OR_RETURN(MerkleTree tree,
                          MerkleTree::Build(std::move(leaves), fanout, alg));

  // Chunk the tuple array into the shared CoW grain of UpdateTuple.
  const size_t num_nodes = tuples.size();
  std::vector<std::shared_ptr<TupleChunk>> chunks;
  chunks.reserve((num_nodes + kTupleChunkNodes - 1) / kTupleChunkNodes);
  for (size_t i = 0; i < num_nodes; i += kTupleChunkNodes) {
    const size_t end = std::min(num_nodes, i + kTupleChunkNodes);
    chunks.push_back(std::make_shared<TupleChunk>(
        std::make_move_iterator(tuples.begin() + static_cast<ptrdiff_t>(i)),
        std::make_move_iterator(tuples.begin() + static_cast<ptrdiff_t>(end))));
  }
  return NetworkAds(std::move(chunks), num_nodes, std::move(leaf_of_node),
                    std::move(tree));
}

size_t NetworkAds::StorageBytes() const {
  size_t bytes = tree_.total_digests() * DigestSize(tree_.algorithm());
  for (const auto& chunk : tuple_chunks_) {
    for (const ExtendedTuple& t : *chunk) {
      bytes += t.SerializedSize();
    }
  }
  return bytes;
}

size_t NetworkAds::SharedTupleChunksWith(const NetworkAds& other) const {
  return SharedSpinePositions<TupleChunk>(tuple_chunks_, other.tuple_chunks_);
}

Status NetworkAds::UpdateTuple(NodeId v, ExtendedTuple tuple,
                               size_t* copied_bytes) {
  if (v >= num_nodes_) {
    return Status::InvalidArgument("node id out of range");
  }
  if (tuple.id != v) {
    return Status::InvalidArgument("tuple id does not match node");
  }
  SPAUTH_FAILPOINT_RETURN("ads/update_tuple");
  SPAUTH_RETURN_IF_ERROR(tree_.UpdateLeaf(
      (*leaf_of_node_)[v], tuple.LeafDigest(tree_.algorithm()),
      copied_bytes));
  TupleChunk& chunk = EnsureUniqueChunk(
      tuple_chunks_[v / kTupleChunkNodes], copied_bytes,
      [](const TupleChunk& c) {
        size_t bytes = 0;
        for (const ExtendedTuple& t : c) {
          bytes += t.SerializedSize();
        }
        return bytes;
      });
  chunk[v % kTupleChunkNodes] = std::move(tuple);
  return Status::Ok();
}

Status NetworkAds::AppendNodeTuple(ExtendedTuple tuple, size_t* copied_bytes) {
  if (tuple.id != num_nodes_) {
    return Status::InvalidArgument(
        "appended tuple id must be the next dense node id");
  }
  SPAUTH_FAILPOINT_RETURN("ads/update_tuple");
  SPAUTH_RETURN_IF_ERROR(tree_.AppendLeaf(
      tuple.LeafDigest(tree_.algorithm()), copied_bytes));
  // The node -> leaf map is versioned: the new shape gets a private copy,
  // any retired snapshot keeps reading the old vector untouched.
  auto leaf_of_node = std::make_shared<std::vector<uint32_t>>(*leaf_of_node_);
  if (copied_bytes != nullptr) {
    *copied_bytes += leaf_of_node->size() * sizeof(uint32_t);
  }
  leaf_of_node->push_back(static_cast<uint32_t>(tree_.num_leaves() - 1));
  leaf_of_node_ = std::move(leaf_of_node);
  if (num_nodes_ % kTupleChunkNodes == 0) {
    auto chunk = std::make_shared<TupleChunk>();
    chunk->reserve(kTupleChunkNodes);
    chunk->push_back(std::move(tuple));
    tuple_chunks_.push_back(std::move(chunk));
  } else {
    TupleChunk& chunk = EnsureUniqueChunk(
        tuple_chunks_.back(), copied_bytes, [](const TupleChunk& c) {
          size_t bytes = 0;
          for (const ExtendedTuple& t : c) {
            bytes += t.SerializedSize();
          }
          return bytes;
        });
    chunk.push_back(std::move(tuple));
  }
  ++num_nodes_;
  return Status::Ok();
}

Result<TupleSetProof> NetworkAds::ProveTuples(
    std::span<const NodeId> nodes) const {
  if (nodes.empty()) {
    return Status::InvalidArgument("no nodes to prove");
  }
  // Sort by leaf index and deduplicate.
  std::vector<std::pair<uint32_t, NodeId>> keyed;
  keyed.reserve(nodes.size());
  for (NodeId v : nodes) {
    if (v >= num_nodes_) {
      return Status::InvalidArgument("node id out of range");
    }
    keyed.push_back({(*leaf_of_node_)[v], v});
  }
  std::sort(keyed.begin(), keyed.end());
  keyed.erase(std::unique(keyed.begin(), keyed.end()), keyed.end());

  TupleSetProof out;
  out.tuples.reserve(keyed.size());
  out.leaf_indices.reserve(keyed.size());
  for (const auto& [leaf, node] : keyed) {
    out.tuples.push_back(tuple(node));
    out.leaf_indices.push_back(leaf);
  }
  SPAUTH_ASSIGN_OR_RETURN(out.proof, tree_.GenerateProof(out.leaf_indices));
  return out;
}

}  // namespace spauth
