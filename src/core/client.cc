#include "core/client.h"

#include <algorithm>
#include <atomic>
#include <string>
#include <unordered_map>

#include "core/engine.h"
#include "core/forest_certificate.h"
#include "core/verify_workspace.h"
#include "util/byte_buffer.h"
#include "util/thread_pool.h"

namespace spauth {

namespace {

/// Decodes one answer into `answer` (workspace scratch) and verifies it,
/// writing the result into `out`. The answer type's verifier receives the
/// same workspace; it never touches the decode scratch it was handed.
template <typename Answer, typename VerifyFn>
void DecodeAndVerifyInto(const RsaPublicKey& owner_key,
                         const Certificate& cert, const Query& query,
                         ByteReader* reader, Answer& answer, VerifyFn verify,
                         VerifyWorkspace& ws, WireVerification* out) {
  out->method = cert.params.method;
  Status decoded = Answer::DeserializeInto(reader, &answer);
  if (!decoded.ok() || !reader->AtEnd()) {
    out->outcome = VerifyOutcome::Reject(VerifyFailure::kMalformedProof,
                                         "answer decode failed");
    return;
  }
  out->path.nodes.assign(answer.path.nodes.begin(), answer.path.nodes.end());
  out->distance = answer.distance;
  out->outcome = verify(owner_key, cert, query, answer, ws);
}

/// Resets the per-message output fields the dispatch may leave untouched.
void ResetVerification(WireVerification* out) {
  out->method = MethodKind::kDij;
  out->version = 0;
  out->degraded = false;
  out->staleness = 0;
  out->path.nodes.clear();
  out->distance = 0;
}

/// The per-method verification dispatch over an already decoded ws.cert;
/// `reader` sits just past the certificate bytes.
void DispatchAnswerVerify(const RsaPublicKey& owner_key, const Query& query,
                          ByteReader* reader, VerifyWorkspace& ws,
                          WireVerification* out);

}  // namespace

WireVerification VerifyWireAnswer(const RsaPublicKey& owner_key,
                                  const Query& query,
                                  std::span<const uint8_t> wire_bytes) {
  VerifyWorkspace ws;
  WireVerification result;
  VerifyWireAnswer(owner_key, query, wire_bytes, ws, &result);
  return result;
}

void VerifyWireAnswer(const RsaPublicKey& owner_key, const Query& query,
                      std::span<const uint8_t> wire_bytes,
                      VerifyWorkspace& ws, WireVerification* out) {
  ResetVerification(out);
  ws.cert_preauthenticated = false;
  ByteReader reader(wire_bytes);
  if (Status s = Certificate::DeserializeInto(&reader, &ws.cert); !s.ok()) {
    out->outcome = VerifyOutcome::Reject(VerifyFailure::kMalformedProof,
                                         "certificate decode failed");
    return;
  }
  DispatchAnswerVerify(owner_key, query, &reader, ws, out);
}

void VerifyWireAnswer(const RsaPublicKey& owner_key,
                      const ForestCertificate& forest, uint32_t shard,
                      const Query& query, std::span<const uint8_t> wire_bytes,
                      std::span<const uint8_t> path_bytes,
                      VerifyWorkspace& ws, WireVerification* out) {
  ResetVerification(out);
  ws.cert_preauthenticated = false;
  ByteReader path_reader(path_bytes);
  if (Status s = ForestPath::DeserializeInto(&path_reader, &ws.forest_path);
      !s.ok() || !path_reader.AtEnd()) {
    out->outcome = VerifyOutcome::Reject(VerifyFailure::kMalformedProof,
                                         "forest path decode failed");
    return;
  }
  // Pin the path to the shard that actually served the answer; without
  // this a provider could attribute shard j's answers to shard k and
  // defeat the per-shard freshness watermarks.
  if (ws.forest_path.shard != shard) {
    out->outcome =
        VerifyOutcome::Reject(VerifyFailure::kBadCertificate,
                              "forest path shard does not match the shard "
                              "that served the answer");
    return;
  }
  ByteReader reader(wire_bytes);
  if (Status s = Certificate::DeserializeInto(&reader, &ws.cert); !s.ok()) {
    out->outcome = VerifyOutcome::Reject(VerifyFailure::kMalformedProof,
                                         "certificate decode failed");
    return;
  }
  // A few hashes authenticate the certificate body against the forest
  // root, whose signature the caller verified once for the whole epoch —
  // this is the only certificate check forest mode performs per answer.
  if (Status s = CheckForestPath(forest, ws.forest_path,
                                 ws.cert.BodyDigest());
      !s.ok()) {
    out->outcome =
        VerifyOutcome::Reject(VerifyFailure::kBadCertificate, s.message());
    return;
  }
  ws.cert_preauthenticated = true;
  DispatchAnswerVerify(owner_key, query, &reader, ws, out);
  ws.cert_preauthenticated = false;
}

namespace {

void DispatchAnswerVerify(const RsaPublicKey& owner_key, const Query& query,
                          ByteReader* reader, VerifyWorkspace& ws,
                          WireVerification* out) {
  out->version = ws.cert.params.version;
  switch (ws.cert.params.method) {
    case MethodKind::kDij:
      DecodeAndVerifyInto<DijAnswer>(
          owner_key, ws.cert, query, reader, ws.dij,
          [](const RsaPublicKey& key, const Certificate& cert,
             const Query& q, const DijAnswer& answer, VerifyWorkspace& w) {
            return VerifyDijAnswer(key, cert, q, answer, w);
          },
          ws, out);
      return;
    case MethodKind::kFull:
      DecodeAndVerifyInto<FullAnswer>(
          owner_key, ws.cert, query, reader, ws.full,
          [](const RsaPublicKey& key, const Certificate& cert,
             const Query& q, const FullAnswer& answer, VerifyWorkspace& w) {
            return VerifyFullAnswer(key, cert, q, answer, w);
          },
          ws, out);
      return;
    case MethodKind::kLdm:
      DecodeAndVerifyInto<LdmAnswer>(
          owner_key, ws.cert, query, reader, ws.ldm,
          [](const RsaPublicKey& key, const Certificate& cert,
             const Query& q, const LdmAnswer& answer, VerifyWorkspace& w) {
            return VerifyLdmAnswer(key, cert, q, answer, w);
          },
          ws, out);
      return;
    case MethodKind::kHyp:
      DecodeAndVerifyInto<HypAnswer>(
          owner_key, ws.cert, query, reader, ws.hyp,
          [](const RsaPublicKey& key, const Certificate& cert,
             const Query& q, const HypAnswer& answer, VerifyWorkspace& w) {
            return VerifyHypAnswer(key, cert, q, answer, w);
          },
          ws, out);
      return;
  }
  out->outcome = VerifyOutcome::Reject(VerifyFailure::kMalformedProof,
                                       "unknown method in certificate");
}

}  // namespace

Client::Client(RsaPublicKey owner_key)
    : owner_key_(std::move(owner_key)),
      ws_(std::make_unique<VerifyWorkspace>()) {}

Client::~Client() = default;
Client::Client(Client&&) noexcept = default;
Client& Client::operator=(Client&&) noexcept = default;

void Client::TrackShardVersions(size_t num_shards) {
  num_tracked_shards_ = std::max<size_t>(num_shards, 1);
  watermarks_ =
      std::make_unique<std::atomic<uint32_t>[]>(num_tracked_shards_);
  for (size_t i = 0; i < num_tracked_shards_; ++i) {
    watermarks_[i].store(0, std::memory_order_relaxed);
  }
}

uint32_t Client::ShardVersionWatermark(size_t shard) const {
  if (watermarks_ == nullptr || shard >= num_tracked_shards_) {
    return 0;
  }
  return watermarks_[shard].load(std::memory_order_acquire);
}

void Client::ApplyWatermark(size_t shard, WireVerification* out) const {
  if (watermarks_ == nullptr || shard >= num_tracked_shards_ ||
      !out->outcome.accepted) {
    return;
  }
  std::atomic<uint32_t>& mark = watermarks_[shard];
  uint32_t seen = mark.load(std::memory_order_acquire);
  for (;;) {
    if (out->version < seen) {
      const uint32_t behind = seen - out->version;
      if (behind <= staleness_bound_) {
        // Degraded accept: authentic, within the staleness budget. The
        // watermark stays put — degradation must never lower the floor.
        out->degraded = true;
        out->staleness = behind;
        return;
      }
      out->outcome = VerifyOutcome::Reject(
          VerifyFailure::kStaleCertificate,
          "certificate version " + std::to_string(out->version) +
              " is older than the shard's accepted watermark " +
              std::to_string(seen) + " by more than the staleness bound " +
              std::to_string(staleness_bound_));
      return;
    }
    if (out->version == seen ||
        mark.compare_exchange_weak(seen, out->version,
                                   std::memory_order_acq_rel)) {
      return;
    }
  }
}

Status Client::AcceptForestCertificate(const ForestCertificate& cert) {
  const uint32_t epoch = cert.params.fleet_epoch;
  if (epoch < fleet_epoch_watermark_) {
    return Status::VerificationFailed(
        "forest certificate epoch " + std::to_string(epoch) +
        " is older than the accepted watermark " +
        std::to_string(fleet_epoch_watermark_));
  }
  if (forest_ != nullptr && epoch == fleet_epoch_watermark_) {
    // Reconnects re-present the current epoch; accepting the exact same
    // forest again is free. A DIFFERENT forest for an epoch this client
    // already pinned is equivocation, never acceptable — and re-verifying
    // its signature would not make it so.
    if (forest_->forest_root == cert.forest_root &&
        forest_->signature == cert.signature) {
      return Status::Ok();
    }
    return Status::VerificationFailed(
        "conflicting forest certificate for already accepted epoch " +
        std::to_string(epoch));
  }
  // The one RSA verify of the epoch.
  if (!VerifyForestCertificate(owner_key_, cert)) {
    return Status::VerificationFailed(
        "forest certificate signature does not verify");
  }
  forest_ = std::make_shared<const ForestCertificate>(cert);
  fleet_epoch_watermark_ = epoch;
  return Status::Ok();
}

Status Client::AcceptForestCertificate(std::span<const uint8_t> encoded) {
  ForestCertificate cert;
  ByteReader reader(encoded);
  SPAUTH_RETURN_IF_ERROR(ForestCertificate::DeserializeInto(&reader, &cert));
  if (!reader.AtEnd()) {
    return Status::Malformed("trailing bytes after forest certificate");
  }
  return AcceptForestCertificate(cert);
}

WireVerification Client::Verify(const Query& query,
                                std::span<const uint8_t> wire_bytes) {
  return Verify(query, wire_bytes, 0);
}

WireVerification Client::Verify(const Query& query,
                                std::span<const uint8_t> wire_bytes,
                                size_t shard) {
  WireVerification result;
  VerifyWireAnswer(owner_key_, query, wire_bytes, *ws_, &result);
  ApplyWatermark(shard, &result);
  return result;
}

std::vector<WireVerification> Client::VerifyBatch(
    std::span<const Query> queries,
    std::span<const std::span<const uint8_t>> wire_messages,
    size_t num_threads) const {
  std::vector<WireVerification> results(queries.size());
  if (queries.size() != wire_messages.size()) {
    for (WireVerification& r : results) {
      r.outcome = VerifyOutcome::Reject(VerifyFailure::kMalformedProof,
                                        "query/wire count mismatch");
    }
    return results;
  }
  if (queries.empty()) {
    return results;
  }
  if (num_threads == 0) {
    num_threads = ThreadPool::DefaultThreads(queries.size());
  }
  num_threads = std::min(num_threads, queries.size());
  if (num_threads <= 1) {
    VerifyWorkspace ws;
    for (size_t i = 0; i < queries.size(); ++i) {
      VerifyWireAnswer(owner_key_, queries[i], wire_messages[i], ws,
                       &results[i]);
      ApplyWatermark(0, &results[i]);
    }
    return results;
  }
  ThreadPool pool(num_threads);
  std::atomic<size_t> next{0};
  for (size_t w = 0; w < num_threads; ++w) {
    pool.Submit([this, &queries, &wire_messages, &results, &next] {
      VerifyWorkspace ws;  // per-worker scratch, hot for the whole stream
      for (size_t i = next.fetch_add(1); i < queries.size();
           i = next.fetch_add(1)) {
        VerifyWireAnswer(owner_key_, queries[i], wire_messages[i], ws,
                         &results[i]);
        ApplyWatermark(0, &results[i]);
      }
    });
  }
  pool.Wait();
  return results;
}

WireVerification Client::VerifyForest(const Query& query,
                                      std::span<const uint8_t> wire_bytes,
                                      std::span<const uint8_t> path_bytes,
                                      size_t shard) {
  WireVerification result;
  if (forest_ == nullptr) {
    result.outcome = VerifyOutcome::Reject(
        VerifyFailure::kBadCertificate,
        "no accepted forest certificate (AcceptForestCertificate first)");
    return result;
  }
  VerifyWireAnswer(owner_key_, *forest_, static_cast<uint32_t>(shard), query,
                   wire_bytes, path_bytes, *ws_, &result);
  ApplyWatermark(shard, &result);
  return result;
}

std::vector<WireVerification> Client::VerifyShardedBatch(
    std::span<const Query> queries,
    std::span<const std::shared_ptr<const ProofBundle>> bundles,
    std::span<const uint32_t> shard_of, size_t num_threads) const {
  std::vector<WireVerification> results(queries.size());
  if (queries.size() != bundles.size() ||
      queries.size() != shard_of.size()) {
    for (WireVerification& r : results) {
      r.outcome = VerifyOutcome::Reject(VerifyFailure::kMalformedProof,
                                        "query/bundle/shard count mismatch");
    }
    return results;
  }
  if (queries.empty()) {
    return results;
  }

  // Group message indices by serving shard; groups preserve stream order.
  // Shard ids are remapped densely rather than used as array indices, so a
  // corrupt or hostile id cannot size an allocation.
  std::unordered_map<uint32_t, size_t> group_of;
  std::vector<std::vector<size_t>> groups;
  for (size_t i = 0; i < shard_of.size(); ++i) {
    const auto [it, inserted] =
        group_of.try_emplace(shard_of[i], groups.size());
    if (inserted) {
      groups.emplace_back();
    }
    groups[it->second].push_back(i);
  }

  auto verify_one = [this, &queries, &bundles, &shard_of, &results](
                        size_t i, VerifyWorkspace& ws) {
    if (bundles[i] == nullptr) {
      results[i].outcome = VerifyOutcome::Reject(
          VerifyFailure::kMalformedProof, "missing bundle for query");
      return;
    }
    VerifyWireAnswer(owner_key_, queries[i], bundles[i]->bytes, ws,
                     &results[i]);
    ApplyWatermark(shard_of[i], &results[i]);
  };

  if (num_threads == 0) {
    num_threads = ThreadPool::DefaultThreads(queries.size());
  }
  // Shard groups are the unit of work (that is the point: one worker, one
  // shard's certificate stream), so more workers than groups is waste.
  num_threads = std::min(num_threads, groups.size());
  if (num_threads <= 1) {
    VerifyWorkspace ws;
    for (const std::vector<size_t>& group : groups) {
      for (size_t i : group) {
        verify_one(i, ws);
      }
    }
    return results;
  }
  ThreadPool pool(num_threads);
  std::atomic<size_t> next_group{0};
  for (size_t w = 0; w < num_threads; ++w) {
    pool.Submit([&groups, &next_group, &verify_one] {
      VerifyWorkspace ws;  // per-worker scratch, hot for the whole stream
      for (size_t g = next_group.fetch_add(1); g < groups.size();
           g = next_group.fetch_add(1)) {
        for (size_t i : groups[g]) {
          verify_one(i, ws);
        }
      }
    });
  }
  pool.Wait();
  return results;
}

std::vector<WireVerification> Client::VerifyShardedBatchForest(
    std::span<const Query> queries,
    std::span<const std::shared_ptr<const ProofBundle>> bundles,
    std::span<const std::span<const uint8_t>> path_of,
    std::span<const uint32_t> shard_of, size_t num_threads) const {
  std::vector<WireVerification> results(queries.size());
  if (queries.size() != bundles.size() || queries.size() != path_of.size() ||
      queries.size() != shard_of.size()) {
    for (WireVerification& r : results) {
      r.outcome =
          VerifyOutcome::Reject(VerifyFailure::kMalformedProof,
                                "query/bundle/path/shard count mismatch");
    }
    return results;
  }
  if (queries.empty()) {
    return results;
  }
  if (forest_ == nullptr) {
    for (WireVerification& r : results) {
      r.outcome = VerifyOutcome::Reject(
          VerifyFailure::kBadCertificate,
          "no accepted forest certificate (AcceptForestCertificate first)");
    }
    return results;
  }
  const ForestCertificate& forest = *forest_;

  // Same shard-major work order as VerifyShardedBatch, for the same
  // reason: one worker drains one shard's certificate stream hot.
  std::unordered_map<uint32_t, size_t> group_of;
  std::vector<std::vector<size_t>> groups;
  for (size_t i = 0; i < shard_of.size(); ++i) {
    const auto [it, inserted] =
        group_of.try_emplace(shard_of[i], groups.size());
    if (inserted) {
      groups.emplace_back();
    }
    groups[it->second].push_back(i);
  }

  auto verify_one = [this, &forest, &queries, &bundles, &path_of, &shard_of,
                     &results](size_t i, VerifyWorkspace& ws) {
    if (bundles[i] == nullptr) {
      results[i].outcome = VerifyOutcome::Reject(
          VerifyFailure::kMalformedProof, "missing bundle for query");
      return;
    }
    VerifyWireAnswer(owner_key_, forest, shard_of[i], queries[i],
                     bundles[i]->bytes, path_of[i], ws, &results[i]);
    ApplyWatermark(shard_of[i], &results[i]);
  };

  if (num_threads == 0) {
    num_threads = ThreadPool::DefaultThreads(queries.size());
  }
  num_threads = std::min(num_threads, groups.size());
  if (num_threads <= 1) {
    VerifyWorkspace ws;
    for (const std::vector<size_t>& group : groups) {
      for (size_t i : group) {
        verify_one(i, ws);
      }
    }
    return results;
  }
  ThreadPool pool(num_threads);
  std::atomic<size_t> next_group{0};
  for (size_t w = 0; w < num_threads; ++w) {
    pool.Submit([&groups, &next_group, &verify_one] {
      VerifyWorkspace ws;  // per-worker scratch, hot for the whole stream
      for (size_t g = next_group.fetch_add(1); g < groups.size();
           g = next_group.fetch_add(1)) {
        for (size_t i : groups[g]) {
          verify_one(i, ws);
        }
      }
    });
  }
  pool.Wait();
  return results;
}

}  // namespace spauth
