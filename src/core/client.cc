#include "core/client.h"

#include "core/dij.h"
#include "core/full.h"
#include "core/hyp.h"
#include "core/ldm.h"
#include "util/byte_buffer.h"

namespace spauth {

namespace {

template <typename Answer, typename VerifyFn>
WireVerification DecodeAndVerify(const RsaPublicKey& owner_key,
                                 const Certificate& cert, const Query& query,
                                 ByteReader* reader, VerifyFn verify) {
  WireVerification result;
  result.method = cert.params.method;
  auto answer = Answer::Deserialize(reader);
  if (!answer.ok() || !reader->AtEnd()) {
    result.outcome = VerifyOutcome::Reject(VerifyFailure::kMalformedProof,
                                           "answer decode failed");
    return result;
  }
  result.path = answer.value().path;
  result.distance = answer.value().distance;
  result.outcome = verify(owner_key, cert, query, answer.value());
  return result;
}

}  // namespace

WireVerification VerifyWireAnswer(const RsaPublicKey& owner_key,
                                  const Query& query,
                                  std::span<const uint8_t> wire_bytes) {
  WireVerification result;
  ByteReader reader(wire_bytes);
  auto cert = Certificate::Deserialize(&reader);
  if (!cert.ok()) {
    result.outcome = VerifyOutcome::Reject(VerifyFailure::kMalformedProof,
                                           "certificate decode failed");
    return result;
  }
  switch (cert.value().params.method) {
    case MethodKind::kDij:
      return DecodeAndVerify<DijAnswer>(owner_key, cert.value(), query,
                                        &reader, VerifyDijAnswer);
    case MethodKind::kFull:
      return DecodeAndVerify<FullAnswer>(owner_key, cert.value(), query,
                                         &reader, VerifyFullAnswer);
    case MethodKind::kLdm:
      return DecodeAndVerify<LdmAnswer>(owner_key, cert.value(), query,
                                        &reader, VerifyLdmAnswer);
    case MethodKind::kHyp:
      return DecodeAndVerify<HypAnswer>(owner_key, cert.value(), query,
                                        &reader, VerifyHypAnswer);
  }
  result.outcome = VerifyOutcome::Reject(VerifyFailure::kMalformedProof,
                                         "unknown method in certificate");
  return result;
}

}  // namespace spauth
