#include "core/client_search.h"

#include <cmath>
#include <queue>

#include "core/network_ads.h"
#include "hints/quantize.h"

namespace spauth {

namespace {

struct HeapEntry {
  double key;  // dist for Dijkstra, f = g + h for A*
  double g;
  NodeId node;
  bool operator>(const HeapEntry& other) const { return key > other.key; }
};

using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;

const ExtendedTuple* Find(const TupleIndex& tuples, NodeId v) {
  auto it = tuples.find(v);
  return it == tuples.end() ? nullptr : it->second;
}

}  // namespace

SubgraphSearchOutcome DijkstraOverTuples(const TupleIndex& tuples,
                                         NodeId source, NodeId target,
                                         double claimed_distance) {
  SubgraphSearchOutcome out;
  const double slack = VerifySlack(claimed_distance);
  std::unordered_map<NodeId, double> best;
  best.reserve(tuples.size());
  best[source] = 0;

  MinHeap heap;
  heap.push({0, 0, source});
  while (!heap.empty()) {
    auto [d, g_unused, u] = heap.top();
    heap.pop();
    auto it = best.find(u);
    if (it != best.end() && d > it->second) {
      continue;  // stale
    }
    if (d > claimed_distance + slack) {
      break;  // everything farther than the claim is irrelevant
    }
    if (u == target) {
      out.code = SubgraphSearchOutcome::Code::kOk;
      out.distance = d;
      return out;
    }
    const ExtendedTuple* tuple = Find(tuples, u);
    if (tuple == nullptr) {
      if (d <= claimed_distance - slack) {
        out.code = SubgraphSearchOutcome::Code::kMissingTuple;
        out.node = u;
        out.distance = d;
        return out;
      }
      continue;  // boundary band: tolerated, not expanded
    }
    ++out.settled;
    for (const NeighborEntry& e : tuple->neighbors) {
      const double nd = d + e.weight;
      auto [bit, inserted] = best.try_emplace(e.id, nd);
      if (inserted || nd < bit->second) {
        bit->second = nd;
        heap.push({nd, nd, e.id});
      }
    }
  }
  out.code = SubgraphSearchOutcome::Code::kTargetNotReached;
  return out;
}

namespace {

/// Resolves the (codes, epsilon) pair used by the Lemma-4 bound for node v.
/// Returns false if landmark data or the representative is missing; sets
/// *missing to the offending node.
bool ResolveLandmark(const TupleIndex& tuples, const ExtendedTuple& t,
                     std::span<const uint16_t>* codes, double* eps,
                     NodeId* missing, bool* bad_data) {
  if (!t.has_landmark_data) {
    *bad_data = true;
    *missing = t.id;
    return false;
  }
  if (t.is_representative) {
    *codes = t.qcodes;
    *eps = 0;
    return true;
  }
  const ExtendedTuple* rep = Find(tuples, t.ref_node);
  if (rep == nullptr) {
    *missing = t.ref_node;
    *bad_data = false;
    return false;
  }
  if (!rep->has_landmark_data || !rep->is_representative) {
    *bad_data = true;
    *missing = rep->id;
    return false;
  }
  *codes = rep->qcodes;
  *eps = t.ref_error;
  return true;
}

}  // namespace

SubgraphSearchOutcome AStarOverTuples(const TupleIndex& tuples, NodeId source,
                                      NodeId target, double claimed_distance,
                                      double lambda) {
  SubgraphSearchOutcome out;
  const double slack = VerifySlack(claimed_distance);

  // Resolve the target's vector once; h(v) needs it for every node.
  const ExtendedTuple* target_tuple = Find(tuples, target);
  if (target_tuple == nullptr) {
    out.code = SubgraphSearchOutcome::Code::kMissingTuple;
    out.node = target;
    return out;
  }
  std::span<const uint16_t> target_codes;
  double target_eps = 0;
  NodeId missing = kInvalidNode;
  bool bad_data = false;
  if (!ResolveLandmark(tuples, *target_tuple, &target_codes, &target_eps,
                       &missing, &bad_data)) {
    out.code = bad_data ? SubgraphSearchOutcome::Code::kBadTupleData
                        : SubgraphSearchOutcome::Code::kMissingTuple;
    out.node = missing;
    return out;
  }

  // h(v): Lemma-4 bound; an error is signalled through the outcome.
  auto lower_bound = [&](const ExtendedTuple& t, double* h) {
    std::span<const uint16_t> codes;
    double eps = 0;
    if (!ResolveLandmark(tuples, t, &codes, &eps, &missing, &bad_data)) {
      return false;
    }
    if (codes.size() != target_codes.size()) {
      bad_data = true;
      missing = t.id;
      return false;
    }
    const double loose = LooseLowerBoundFromCodes(codes, target_codes, lambda);
    *h = std::max(0.0, loose - (eps + target_eps));
    return true;
  };

  std::unordered_map<NodeId, double> best;
  best.reserve(tuples.size());
  best[source] = 0;

  const ExtendedTuple* source_tuple = Find(tuples, source);
  if (source_tuple == nullptr) {
    out.code = SubgraphSearchOutcome::Code::kMissingTuple;
    out.node = source;
    return out;
  }
  double h_source = 0;
  if (!lower_bound(*source_tuple, &h_source)) {
    out.code = bad_data ? SubgraphSearchOutcome::Code::kBadTupleData
                        : SubgraphSearchOutcome::Code::kMissingTuple;
    out.node = missing;
    return out;
  }

  MinHeap heap;
  heap.push({h_source, 0, source});
  while (!heap.empty()) {
    auto [f, g, u] = heap.top();
    heap.pop();
    auto it = best.find(u);
    if (it != best.end() && g > it->second) {
      continue;  // stale
    }
    if (f > claimed_distance + slack) {
      break;  // admissible bound: nothing cheaper remains
    }
    if (u == target) {
      out.code = SubgraphSearchOutcome::Code::kOk;
      out.distance = g;
      return out;
    }
    const ExtendedTuple* tuple = Find(tuples, u);
    if (tuple == nullptr) {
      if (f <= claimed_distance - slack) {
        out.code = SubgraphSearchOutcome::Code::kMissingTuple;
        out.node = u;
        out.distance = g;
        return out;
      }
      continue;
    }
    ++out.settled;
    for (const NeighborEntry& e : tuple->neighbors) {
      const double ng = g + e.weight;
      auto [bit, inserted] = best.try_emplace(e.id, ng);
      if (!inserted && ng >= bit->second) {
        continue;
      }
      bit->second = ng;
      const ExtendedTuple* nt = Find(tuples, e.id);
      if (nt == nullptr) {
        // Lemma 2 includes every neighbor of the search space; absence is
        // only acceptable for nodes the search could never expand anyway.
        if (ng <= claimed_distance - slack) {
          out.code = SubgraphSearchOutcome::Code::kMissingTuple;
          out.node = e.id;
          return out;
        }
        continue;
      }
      double h = 0;
      if (!lower_bound(*nt, &h)) {
        out.code = bad_data ? SubgraphSearchOutcome::Code::kBadTupleData
                            : SubgraphSearchOutcome::Code::kMissingTuple;
        out.node = missing;
        return out;
      }
      heap.push({ng + h, ng, e.id});
    }
  }
  out.code = SubgraphSearchOutcome::Code::kTargetNotReached;
  return out;
}

VerifyOutcome CheckPathAgainstTuples(const TupleIndex& tuples,
                                     const Query& query, const Path& path,
                                     double claimed_distance) {
  if (path.empty() || path.source() != query.source ||
      path.target() != query.target) {
    return VerifyOutcome::Reject(VerifyFailure::kInvalidPath,
                                 "path endpoints do not match the query");
  }
  std::unordered_map<NodeId, int> seen;
  for (NodeId v : path.nodes) {
    if (++seen[v] > 1) {
      return VerifyOutcome::Reject(VerifyFailure::kInvalidPath,
                                   "path repeats a node");
    }
  }
  double total = 0;
  for (size_t i = 1; i < path.nodes.size(); ++i) {
    auto it = tuples.find(path.nodes[i - 1]);
    if (it == tuples.end()) {
      return VerifyOutcome::Reject(VerifyFailure::kInvalidPath,
                                   "path node has no authenticated tuple");
    }
    auto w = it->second->WeightTo(path.nodes[i]);
    if (!w.ok()) {
      return VerifyOutcome::Reject(VerifyFailure::kInvalidPath,
                                   "path uses a non-existent edge");
    }
    total += w.value();
  }
  if (tuples.find(path.target()) == tuples.end()) {
    return VerifyOutcome::Reject(VerifyFailure::kInvalidPath,
                                 "path target has no authenticated tuple");
  }
  if (std::abs(total - claimed_distance) > VerifySlack(claimed_distance)) {
    return VerifyOutcome::Reject(
        VerifyFailure::kDistanceMismatch,
        "path length does not equal the claimed distance");
  }
  return VerifyOutcome::Accept();
}

std::unordered_map<NodeId, double> InCellDijkstraOverTuples(
    const TupleIndex& tuples, NodeId source, uint32_t cell) {
  std::unordered_map<NodeId, double> dist;
  const ExtendedTuple* source_tuple = Find(tuples, source);
  if (source_tuple == nullptr || !source_tuple->has_cell_data ||
      source_tuple->cell != cell) {
    return dist;
  }
  dist[source] = 0;
  MinHeap heap;
  heap.push({0, 0, source});
  while (!heap.empty()) {
    auto [d, g_unused, u] = heap.top();
    heap.pop();
    auto it = dist.find(u);
    if (it != dist.end() && d > it->second) {
      continue;
    }
    const ExtendedTuple* tuple = Find(tuples, u);
    // A tuple absent or outside the cell contributes no edges; cell
    // completeness is checked separately against the certificate counts.
    if (tuple == nullptr || !tuple->has_cell_data || tuple->cell != cell) {
      continue;
    }
    for (const NeighborEntry& e : tuple->neighbors) {
      const ExtendedTuple* nt = Find(tuples, e.id);
      if (nt == nullptr || !nt->has_cell_data || nt->cell != cell) {
        continue;  // out-of-cell edge
      }
      const double nd = d + e.weight;
      auto [bit, inserted] = dist.try_emplace(e.id, nd);
      if (inserted || nd < bit->second) {
        bit->second = nd;
        heap.push({nd, nd, e.id});
      }
    }
  }
  return dist;
}

}  // namespace spauth
