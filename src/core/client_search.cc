#include "core/client_search.h"

#include <algorithm>
#include <cmath>

#include "core/network_ads.h"
#include "hints/quantize.h"

namespace spauth {

namespace {

const ExtendedTuple* FindTuple(const TupleIndex& tuples, NodeId v) {
  auto it = tuples.find(v);
  return it == tuples.end() ? nullptr : it->second;
}

const ExtendedTuple* FindTuple(const TupleLane& tuples, NodeId v) {
  return tuples.Find(v);
}

// Id bound for the map wrappers: every node the search may stamp in a lane
// (endpoints, tuple ids, and all adjacency targets). The lane overloads get
// this bound from the certified node count instead.
size_t MapIdBound(const TupleIndex& tuples, NodeId source, NodeId target) {
  size_t bound = std::max<size_t>(source, target);
  for (const auto& [id, tuple] : tuples) {
    bound = std::max<size_t>(bound, id);
    for (const NeighborEntry& e : tuple->neighbors) {
      bound = std::max<size_t>(bound, e.id);
    }
  }
  return bound + 1;
}

// The shared search bodies are templated on the index type so the map
// signatures and the TupleLane fast path run literally the same code —
// outcomes are identical by construction. All distance state lives in the
// caller's SearchLane/heap, so the hot path never allocates.

template <typename Index>
SubgraphSearchOutcome DijkstraOverTuplesImpl(const Index& tuples,
                                             NodeId source, NodeId target,
                                             double claimed_distance,
                                             size_t num_nodes,
                                             SearchLane& best,
                                             FourAryHeap<DistHeapEntry>& heap) {
  SubgraphSearchOutcome out;
  const double slack = VerifySlack(claimed_distance);
  best.Prepare(num_nodes);
  heap.Clear();
  if (source >= num_nodes) {
    // An id beyond the certified range can never carry an authenticated
    // tuple; replicate the untupled-source semantics without a lane slot.
    if (0 > claimed_distance + slack) {
      return out;  // kTargetNotReached
    }
    if (source == target) {
      out.code = SubgraphSearchOutcome::Code::kOk;
      out.distance = 0;
      return out;
    }
    if (0 <= claimed_distance - slack) {
      out.code = SubgraphSearchOutcome::Code::kMissingTuple;
      out.node = source;
      out.distance = 0;
    }
    return out;
  }
  best.Relax(source, 0, kInvalidNode);
  heap.Push({0, source});
  while (!heap.Empty()) {
    const DistHeapEntry top = heap.PopMin();
    const double d = top.key;
    const NodeId u = top.node;
    if (d > best.Dist(u)) {
      continue;  // stale
    }
    if (d > claimed_distance + slack) {
      break;  // everything farther than the claim is irrelevant
    }
    if (u == target) {
      out.code = SubgraphSearchOutcome::Code::kOk;
      out.distance = d;
      return out;
    }
    const ExtendedTuple* tuple = FindTuple(tuples, u);
    if (tuple == nullptr) {
      if (d <= claimed_distance - slack) {
        out.code = SubgraphSearchOutcome::Code::kMissingTuple;
        out.node = u;
        out.distance = d;
        return out;
      }
      continue;  // boundary band: tolerated, not expanded
    }
    ++out.settled;
    for (const NeighborEntry& e : tuple->neighbors) {
      const double nd = d + e.weight;
      if (e.id >= num_nodes) {
        // Unreachable for authenticated tuples (ids are bound by the
        // certified leaf count); reject-biased handling for robustness.
        if (nd <= claimed_distance - slack) {
          out.code = SubgraphSearchOutcome::Code::kMissingTuple;
          out.node = e.id;
          out.distance = nd;
          return out;
        }
        continue;
      }
      if (nd < best.Dist(e.id)) {
        best.Relax(e.id, nd, u);
        heap.Push({nd, e.id});
      }
    }
  }
  out.code = SubgraphSearchOutcome::Code::kTargetNotReached;
  return out;
}

/// Resolves the (codes, epsilon) pair used by the Lemma-4 bound for node v.
/// Returns false if landmark data or the representative is missing; sets
/// *missing to the offending node.
template <typename Index>
bool ResolveLandmark(const Index& tuples, const ExtendedTuple& t,
                     std::span<const uint16_t>* codes, double* eps,
                     NodeId* missing, bool* bad_data) {
  if (!t.has_landmark_data) {
    *bad_data = true;
    *missing = t.id;
    return false;
  }
  if (t.is_representative) {
    *codes = t.qcodes;
    *eps = 0;
    return true;
  }
  const ExtendedTuple* rep = FindTuple(tuples, t.ref_node);
  if (rep == nullptr) {
    *missing = t.ref_node;
    *bad_data = false;
    return false;
  }
  if (!rep->has_landmark_data || !rep->is_representative) {
    *bad_data = true;
    *missing = rep->id;
    return false;
  }
  *codes = rep->qcodes;
  *eps = t.ref_error;
  return true;
}

template <typename Index>
SubgraphSearchOutcome AStarOverTuplesImpl(const Index& tuples, NodeId source,
                                          NodeId target,
                                          double claimed_distance,
                                          double lambda, size_t num_nodes,
                                          SearchLane& best,
                                          FourAryHeap<AStarHeapEntry>& heap) {
  SubgraphSearchOutcome out;
  const double slack = VerifySlack(claimed_distance);

  // Resolve the target's vector once; h(v) needs it for every node.
  const ExtendedTuple* target_tuple = FindTuple(tuples, target);
  if (target_tuple == nullptr) {
    out.code = SubgraphSearchOutcome::Code::kMissingTuple;
    out.node = target;
    return out;
  }
  std::span<const uint16_t> target_codes;
  double target_eps = 0;
  NodeId missing = kInvalidNode;
  bool bad_data = false;
  if (!ResolveLandmark(tuples, *target_tuple, &target_codes, &target_eps,
                       &missing, &bad_data)) {
    out.code = bad_data ? SubgraphSearchOutcome::Code::kBadTupleData
                        : SubgraphSearchOutcome::Code::kMissingTuple;
    out.node = missing;
    return out;
  }

  // h(v): Lemma-4 bound; an error is signalled through the outcome.
  auto lower_bound = [&](const ExtendedTuple& t, double* h) {
    std::span<const uint16_t> codes;
    double eps = 0;
    if (!ResolveLandmark(tuples, t, &codes, &eps, &missing, &bad_data)) {
      return false;
    }
    if (codes.size() != target_codes.size()) {
      bad_data = true;
      missing = t.id;
      return false;
    }
    const double loose = LooseLowerBoundFromCodes(codes, target_codes, lambda);
    *h = std::max(0.0, loose - (eps + target_eps));
    return true;
  };

  const ExtendedTuple* source_tuple = FindTuple(tuples, source);
  if (source_tuple == nullptr) {
    out.code = SubgraphSearchOutcome::Code::kMissingTuple;
    out.node = source;
    return out;
  }
  double h_source = 0;
  if (!lower_bound(*source_tuple, &h_source)) {
    out.code = bad_data ? SubgraphSearchOutcome::Code::kBadTupleData
                        : SubgraphSearchOutcome::Code::kMissingTuple;
    out.node = missing;
    return out;
  }

  // A tupled source/target is inside the certified id range by definition
  // of the lane (and of the wrapper's bound), so lane writes are safe.
  best.Prepare(num_nodes);
  heap.Clear();
  best.Relax(source, 0, kInvalidNode);
  heap.Push({h_source, 0, source});
  while (!heap.Empty()) {
    const AStarHeapEntry top = heap.PopMin();
    const double f = top.key;
    const double g = top.g;
    const NodeId u = top.node;
    if (g > best.Dist(u)) {
      continue;  // stale
    }
    if (f > claimed_distance + slack) {
      break;  // admissible bound: nothing cheaper remains
    }
    if (u == target) {
      out.code = SubgraphSearchOutcome::Code::kOk;
      out.distance = g;
      return out;
    }
    const ExtendedTuple* tuple = FindTuple(tuples, u);
    if (tuple == nullptr) {
      if (f <= claimed_distance - slack) {
        out.code = SubgraphSearchOutcome::Code::kMissingTuple;
        out.node = u;
        out.distance = g;
        return out;
      }
      continue;
    }
    ++out.settled;
    for (const NeighborEntry& e : tuple->neighbors) {
      const double ng = g + e.weight;
      if (e.id >= num_nodes) {
        // See DijkstraOverTuplesImpl: unreachable for authenticated
        // tuples, reject-biased otherwise.
        if (ng <= claimed_distance - slack) {
          out.code = SubgraphSearchOutcome::Code::kMissingTuple;
          out.node = e.id;
          return out;
        }
        continue;
      }
      if (ng >= best.Dist(e.id)) {
        continue;
      }
      best.Relax(e.id, ng, u);
      const ExtendedTuple* nt = FindTuple(tuples, e.id);
      if (nt == nullptr) {
        // Lemma 2 includes every neighbor of the search space; absence is
        // only acceptable for nodes the search could never expand anyway.
        if (ng <= claimed_distance - slack) {
          out.code = SubgraphSearchOutcome::Code::kMissingTuple;
          out.node = e.id;
          return out;
        }
        continue;
      }
      double h = 0;
      if (!lower_bound(*nt, &h)) {
        out.code = bad_data ? SubgraphSearchOutcome::Code::kBadTupleData
                            : SubgraphSearchOutcome::Code::kMissingTuple;
        out.node = missing;
        return out;
      }
      heap.Push({ng + h, ng, e.id});
    }
  }
  out.code = SubgraphSearchOutcome::Code::kTargetNotReached;
  return out;
}

template <typename Index>
void InCellDijkstraOverTuplesImpl(const Index& tuples, NodeId source,
                                  uint32_t cell, size_t num_nodes,
                                  SearchLane& dist,
                                  FourAryHeap<DistHeapEntry>& heap,
                                  std::vector<NodeId>* reached) {
  dist.Prepare(num_nodes);
  heap.Clear();
  const ExtendedTuple* source_tuple = FindTuple(tuples, source);
  if (source_tuple == nullptr || !source_tuple->has_cell_data ||
      source_tuple->cell != cell) {
    return;
  }
  dist.Relax(source, 0, kInvalidNode);
  if (reached != nullptr) {
    reached->push_back(source);
  }
  heap.Push({0, source});
  while (!heap.Empty()) {
    const DistHeapEntry top = heap.PopMin();
    const double d = top.key;
    const NodeId u = top.node;
    if (d > dist.Dist(u)) {
      continue;
    }
    const ExtendedTuple* tuple = FindTuple(tuples, u);
    // A tuple absent or outside the cell contributes no edges; cell
    // completeness is checked separately against the certificate counts.
    if (tuple == nullptr || !tuple->has_cell_data || tuple->cell != cell) {
      continue;
    }
    for (const NeighborEntry& e : tuple->neighbors) {
      const ExtendedTuple* nt = FindTuple(tuples, e.id);
      if (nt == nullptr || !nt->has_cell_data || nt->cell != cell) {
        continue;  // out-of-cell edge
      }
      const double nd = d + e.weight;
      if (nd < dist.Dist(e.id)) {
        if (reached != nullptr && dist.Dist(e.id) == kInfDistance) {
          reached->push_back(e.id);
        }
        dist.Relax(e.id, nd, u);
        heap.Push({nd, e.id});
      }
    }
  }
}

template <typename Index>
VerifyOutcome CheckPathAgainstTuplesImpl(const Index& tuples,
                                         const Query& query, const Path& path,
                                         double claimed_distance,
                                         std::vector<NodeId>& scratch) {
  if (path.empty() || path.source() != query.source ||
      path.target() != query.target) {
    return VerifyOutcome::Reject(VerifyFailure::kInvalidPath,
                                 "path endpoints do not match the query");
  }
  scratch.assign(path.nodes.begin(), path.nodes.end());
  std::sort(scratch.begin(), scratch.end());
  if (std::adjacent_find(scratch.begin(), scratch.end()) != scratch.end()) {
    return VerifyOutcome::Reject(VerifyFailure::kInvalidPath,
                                 "path repeats a node");
  }
  double total = 0;
  for (size_t i = 1; i < path.nodes.size(); ++i) {
    const ExtendedTuple* tuple = FindTuple(tuples, path.nodes[i - 1]);
    if (tuple == nullptr) {
      return VerifyOutcome::Reject(VerifyFailure::kInvalidPath,
                                   "path node has no authenticated tuple");
    }
    auto w = tuple->WeightTo(path.nodes[i]);
    if (!w.ok()) {
      return VerifyOutcome::Reject(VerifyFailure::kInvalidPath,
                                   "path uses a non-existent edge");
    }
    total += w.value();
  }
  if (FindTuple(tuples, path.target()) == nullptr) {
    return VerifyOutcome::Reject(VerifyFailure::kInvalidPath,
                                 "path target has no authenticated tuple");
  }
  if (std::abs(total - claimed_distance) > VerifySlack(claimed_distance)) {
    return VerifyOutcome::Reject(
        VerifyFailure::kDistanceMismatch,
        "path length does not equal the claimed distance");
  }
  return VerifyOutcome::Accept();
}

}  // namespace

SubgraphSearchOutcome DijkstraOverTuples(const TupleIndex& tuples,
                                         NodeId source, NodeId target,
                                         double claimed_distance) {
  SearchLane best;
  FourAryHeap<DistHeapEntry> heap;
  return DijkstraOverTuplesImpl(tuples, source, target, claimed_distance,
                                MapIdBound(tuples, source, target), best,
                                heap);
}

SubgraphSearchOutcome DijkstraOverTuples(const TupleLane& tuples,
                                         NodeId source, NodeId target,
                                         double claimed_distance,
                                         SearchWorkspace& ws) {
  return DijkstraOverTuplesImpl(tuples, source, target, claimed_distance,
                                tuples.num_nodes(), ws.forward, ws.heap);
}

SubgraphSearchOutcome AStarOverTuples(const TupleIndex& tuples, NodeId source,
                                      NodeId target, double claimed_distance,
                                      double lambda) {
  SearchLane best;
  FourAryHeap<AStarHeapEntry> heap;
  return AStarOverTuplesImpl(tuples, source, target, claimed_distance, lambda,
                             MapIdBound(tuples, source, target), best, heap);
}

SubgraphSearchOutcome AStarOverTuples(const TupleLane& tuples, NodeId source,
                                      NodeId target, double claimed_distance,
                                      double lambda, SearchWorkspace& ws) {
  return AStarOverTuplesImpl(tuples, source, target, claimed_distance, lambda,
                             tuples.num_nodes(), ws.forward, ws.astar_heap);
}

std::unordered_map<NodeId, double> InCellDijkstraOverTuples(
    const TupleIndex& tuples, NodeId source, uint32_t cell) {
  SearchLane lane;
  FourAryHeap<DistHeapEntry> heap;
  std::vector<NodeId> reached;
  InCellDijkstraOverTuplesImpl(tuples, source, cell,
                               MapIdBound(tuples, source, source), lane, heap,
                               &reached);
  std::unordered_map<NodeId, double> dist;
  dist.reserve(reached.size());
  for (NodeId v : reached) {
    dist[v] = lane.Dist(v);
  }
  return dist;
}

void InCellDijkstraOverTuples(const TupleLane& tuples, NodeId source,
                              uint32_t cell, SearchLane* dist,
                              FourAryHeap<DistHeapEntry>* heap,
                              std::vector<NodeId>* reached) {
  InCellDijkstraOverTuplesImpl(tuples, source, cell, tuples.num_nodes(),
                               *dist, *heap, reached);
}

VerifyOutcome CheckPathAgainstTuples(const TupleIndex& tuples,
                                     const Query& query, const Path& path,
                                     double claimed_distance) {
  std::vector<NodeId> scratch;
  return CheckPathAgainstTuplesImpl(tuples, query, path, claimed_distance,
                                    scratch);
}

VerifyOutcome CheckPathAgainstTuples(const TupleLane& tuples,
                                     const Query& query, const Path& path,
                                     double claimed_distance,
                                     std::vector<NodeId>* scratch) {
  return CheckPathAgainstTuplesImpl(tuples, query, path, claimed_distance,
                                    *scratch);
}

}  // namespace spauth
