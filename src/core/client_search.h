// Client-side re-execution of shortest path search over *authenticated
// tuples only* — the heart of subgraph-proof verification. The client has
// no access to the graph; its entire world is the tuple map decoded from
// Gamma_S. The searches here mirror Dijkstra / A* but additionally detect
// when the proof is missing a tuple the search needs (the tuple-drop attack
// of Section IV-A).
#ifndef SPAUTH_CORE_CLIENT_SEARCH_H_
#define SPAUTH_CORE_CLIENT_SEARCH_H_

#include <unordered_map>

#include "core/verify_outcome.h"
#include "graph/graph.h"
#include "graph/path.h"
#include "graph/workload.h"
#include "hints/extended_tuple.h"

namespace spauth {

using TupleIndex = std::unordered_map<NodeId, const ExtendedTuple*>;

struct SubgraphSearchOutcome {
  enum class Code {
    kOk,                // target settled; `distance` is its distance
    kMissingTuple,      // a strictly-needed tuple is absent (see node)
    kTargetNotReached,  // search exhausted without reaching the target
    kBadTupleData,      // tuple lacks required landmark fields
  };
  Code code = Code::kTargetNotReached;
  double distance = kInfDistance;
  NodeId node = kInvalidNode;  // offending node for error codes
  size_t settled = 0;
};

/// Dijkstra over the tuple map (DIJ verification, Section IV-A). Expands
/// every node whose key is within `claimed_distance` (+ slack); a missing
/// tuple at key <= claimed - slack is a hard failure, missing tuples in the
/// boundary band are tolerated. Stops as soon as the target settles.
SubgraphSearchOutcome DijkstraOverTuples(const TupleIndex& tuples,
                                         NodeId source, NodeId target,
                                         double claimed_distance);

/// A* over the tuple map with the compressed-quantized landmark bound of
/// Lemmas 3-4 (LDM verification, Section V-A). `lambda` comes from the
/// certificate. Re-expands on shorter g, so the inconsistent loose bound is
/// safe. Requires every touched tuple to carry landmark data and every
/// referenced representative to be present with its code vector.
SubgraphSearchOutcome AStarOverTuples(const TupleIndex& tuples, NodeId source,
                                      NodeId target, double claimed_distance,
                                      double lambda);

/// Dijkstra from `source` restricted to edges whose endpoints both carry
/// tuples in cell `cell` (HYP verification, Section V-B). Returns the
/// in-cell distance for every reached node of the cell.
std::unordered_map<NodeId, double> InCellDijkstraOverTuples(
    const TupleIndex& tuples, NodeId source, uint32_t cell);

/// Shared by all methods: checks the reported path against the
/// authenticated tuples — endpoints match the query, no repeated nodes,
/// every hop is an authenticated edge, and the weights sum to the claimed
/// distance.
VerifyOutcome CheckPathAgainstTuples(const TupleIndex& tuples,
                                     const Query& query, const Path& path,
                                     double claimed_distance);

}  // namespace spauth

#endif  // SPAUTH_CORE_CLIENT_SEARCH_H_
