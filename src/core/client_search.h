// Client-side re-execution of shortest path search over *authenticated
// tuples only* — the heart of subgraph-proof verification. The client has
// no access to the graph; its entire world is the tuple map decoded from
// Gamma_S. The searches here mirror Dijkstra / A* but additionally detect
// when the proof is missing a tuple the search needs (the tuple-drop attack
// of Section IV-A).
#ifndef SPAUTH_CORE_CLIENT_SEARCH_H_
#define SPAUTH_CORE_CLIENT_SEARCH_H_

#include <unordered_map>
#include <vector>

#include "core/verify_outcome.h"
#include "graph/graph.h"
#include "graph/path.h"
#include "graph/search_workspace.h"
#include "graph/workload.h"
#include "hints/extended_tuple.h"

namespace spauth {

using TupleIndex = std::unordered_map<NodeId, const ExtendedTuple*>;

/// Generation-stamped node-id -> tuple-pointer index for the verification
/// fast path. The certified node count (MethodParams::num_network_leaves)
/// bounds every genuine tuple id, so a flat array replaces the hash map;
/// Prepare() invalidates in O(1) and the slot arrays keep their capacity,
/// so a hot verifier indexes proof after proof without allocating.
/// Single-threaded; one per VerifyWorkspace.
class TupleLane {
 public:
  enum class InsertResult { kOk, kDuplicate, kOutOfRange };

  /// Readies the lane for a tuple set over ids in [0, num_nodes).
  void Prepare(size_t num_nodes) {
    num_nodes_ = num_nodes;
    if (++generation_ == 0) {
      std::fill(stamp_.begin(), stamp_.end(), 0);
      generation_ = 1;
    }
    if (slots_.size() < num_nodes) {
      slots_.resize(num_nodes, nullptr);
      stamp_.resize(num_nodes, 0);
    }
  }

  /// Registers `tuple` under its id. The pointer must outlive the lane's
  /// current generation (the verifier's decoded answer does).
  InsertResult Insert(const ExtendedTuple* tuple) {
    const NodeId v = tuple->id;
    if (v >= num_nodes_) {
      return InsertResult::kOutOfRange;
    }
    if (stamp_[v] == generation_) {
      return InsertResult::kDuplicate;
    }
    stamp_[v] = generation_;
    slots_[v] = tuple;
    return InsertResult::kOk;
  }

  /// The tuple registered for `v`, or nullptr (absent or out of range).
  const ExtendedTuple* Find(NodeId v) const {
    return v < num_nodes_ && stamp_[v] == generation_ ? slots_[v] : nullptr;
  }

  /// The id bound of the current generation (certified node count).
  size_t num_nodes() const { return num_nodes_; }

 private:
  std::vector<const ExtendedTuple*> slots_;
  std::vector<uint32_t> stamp_;
  uint32_t generation_ = 0;
  size_t num_nodes_ = 0;
};

struct SubgraphSearchOutcome {
  enum class Code {
    kOk,                // target settled; `distance` is its distance
    kMissingTuple,      // a strictly-needed tuple is absent (see node)
    kTargetNotReached,  // search exhausted without reaching the target
    kBadTupleData,      // tuple lacks required landmark fields
  };
  Code code = Code::kTargetNotReached;
  double distance = kInfDistance;
  NodeId node = kInvalidNode;  // offending node for error codes
  size_t settled = 0;
};

/// Dijkstra over the tuple map (DIJ verification, Section IV-A). Expands
/// every node whose key is within `claimed_distance` (+ slack); a missing
/// tuple at key <= claimed - slack is a hard failure, missing tuples in the
/// boundary band are tolerated. Stops as soon as the target settles.
SubgraphSearchOutcome DijkstraOverTuples(const TupleIndex& tuples,
                                         NodeId source, NodeId target,
                                         double claimed_distance);

/// Fast path: the same search over a prepared TupleLane, with the distance
/// lane and heap borrowed from `ws` (forward lane + dist heap) so a hot
/// verifier searches without allocating. The map overload is a thin
/// wrapper, so outcomes are identical by construction.
SubgraphSearchOutcome DijkstraOverTuples(const TupleLane& tuples,
                                         NodeId source, NodeId target,
                                         double claimed_distance,
                                         SearchWorkspace& ws);

/// A* over the tuple map with the compressed-quantized landmark bound of
/// Lemmas 3-4 (LDM verification, Section V-A). `lambda` comes from the
/// certificate. Re-expands on shorter g, so the inconsistent loose bound is
/// safe. Requires every touched tuple to carry landmark data and every
/// referenced representative to be present with its code vector.
SubgraphSearchOutcome AStarOverTuples(const TupleIndex& tuples, NodeId source,
                                      NodeId target, double claimed_distance,
                                      double lambda);

/// Fast path over a TupleLane (forward lane + A* heap from `ws`); the map
/// overload is a thin wrapper.
SubgraphSearchOutcome AStarOverTuples(const TupleLane& tuples, NodeId source,
                                      NodeId target, double claimed_distance,
                                      double lambda, SearchWorkspace& ws);

/// Dijkstra from `source` restricted to edges whose endpoints both carry
/// tuples in cell `cell` (HYP verification, Section V-B). Returns the
/// in-cell distance for every reached node of the cell.
std::unordered_map<NodeId, double> InCellDijkstraOverTuples(
    const TupleIndex& tuples, NodeId source, uint32_t cell);

/// Fast path: writes the in-cell distances into `dist` (prepared for the
/// lane's node count; unreached nodes read kInfDistance) using `heap` as
/// scratch. When `reached` is non-null the settled nodes are appended to
/// it. The map overload is a thin wrapper.
void InCellDijkstraOverTuples(const TupleLane& tuples, NodeId source,
                              uint32_t cell, SearchLane* dist,
                              FourAryHeap<DistHeapEntry>* heap,
                              std::vector<NodeId>* reached);

/// Shared by all methods: checks the reported path against the
/// authenticated tuples — endpoints match the query, no repeated nodes,
/// every hop is an authenticated edge, and the weights sum to the claimed
/// distance.
VerifyOutcome CheckPathAgainstTuples(const TupleIndex& tuples,
                                     const Query& query, const Path& path,
                                     double claimed_distance);

/// Fast path over a TupleLane; `scratch` holds the repeated-node check's
/// sort buffer. The map overload is a thin wrapper.
VerifyOutcome CheckPathAgainstTuples(const TupleLane& tuples,
                                     const Query& query, const Path& path,
                                     double claimed_distance,
                                     std::vector<NodeId>* scratch);

}  // namespace spauth

#endif  // SPAUTH_CORE_CLIENT_SEARCH_H_
