// Client-side verification outcome: accept, or reject with a reason.
#ifndef SPAUTH_CORE_VERIFY_OUTCOME_H_
#define SPAUTH_CORE_VERIFY_OUTCOME_H_

#include <string>
#include <string_view>

namespace spauth {

/// Why a proof was rejected. The distinctions matter for the security test
/// suite: each attack class must trip the matching check.
enum class VerifyFailure {
  kNone = 0,
  /// The proof bytes could not be decoded or are internally inconsistent.
  kMalformedProof,
  /// The owner certificate's signature did not verify, or its parameters
  /// do not match the query's method.
  kBadCertificate,
  /// A reconstructed Merkle root does not match the certified root.
  kRootMismatch,
  /// The subgraph proof is missing tuples the verification search needs
  /// (the tuple-drop attack of Section IV-A).
  kIncompleteSubgraph,
  /// The reported path is broken: wrong endpoints, repeated nodes, or a hop
  /// that is not an authenticated edge.
  kInvalidPath,
  /// The reported path's length does not equal the claimed distance, or the
  /// claimed distance does not match the authenticated distance value.
  kDistanceMismatch,
  /// A strictly shorter path exists in the verified subgraph: the reported
  /// path is not the shortest.
  kNotShortest,
  /// A distance proof is missing required entries (e.g. hyper-edges for
  /// some border pair) or contains entries for the wrong keys.
  kWrongEntries,
  /// The certificate is authentic but its version is older than one this
  /// client has already accepted from the same serving shard (freshness
  /// enforcement via Client::TrackShardVersions; the paper assumes an
  /// out-of-band freshness policy — this is ours).
  kStaleCertificate,
};

std::string_view ToString(VerifyFailure failure);

struct VerifyOutcome {
  bool accepted = false;
  VerifyFailure failure = VerifyFailure::kNone;
  std::string detail;

  static VerifyOutcome Accept() { return {true, VerifyFailure::kNone, ""}; }
  static VerifyOutcome Reject(VerifyFailure failure, std::string detail) {
    return {false, failure, std::move(detail)};
  }

  std::string ToString() const;
};

}  // namespace spauth

#endif  // SPAUTH_CORE_VERIFY_OUTCOME_H_
