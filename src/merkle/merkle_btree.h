// Keyed Merkle structure for materialized distance tuples
// <vi.id, vj.id, dist(vi, vj)> (Sections IV-B and V-B).
//
// Entries are sorted by a 64-bit composite key (the packed node-id pair) and
// a dense n-ary Merkle tree is built over the entry digests; multi-point
// lookups return the entries, their leaf positions and one shared subset
// proof (shared search-path digests are merged automatically by the subset
// proof construction — the "size O(f log |V|)" property of Section IV-B).
#ifndef SPAUTH_MERKLE_MERKLE_BTREE_H_
#define SPAUTH_MERKLE_MERKLE_BTREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/digest.h"
#include "merkle/merkle_tree.h"
#include "util/byte_buffer.h"
#include "util/status.h"

namespace spauth {

/// Composite key for an unordered node pair; the canonical form puts the
/// smaller id in the high word so ranges of one node's pairs are contiguous.
uint64_t PackNodePairKey(uint32_t a, uint32_t b);

/// One authenticated tuple: key -> distance value.
struct DistanceEntry {
  uint64_t key = 0;
  double value = 0;

  bool operator==(const DistanceEntry& other) const {
    return key == other.key && value == other.value;
  }
};

/// Canonical leaf payload bytes of an entry (what gets hashed).
void SerializeDistanceEntry(const DistanceEntry& entry, ByteWriter* out);
Result<DistanceEntry> DeserializeDistanceEntry(ByteReader* in);
Digest HashDistanceEntry(HashAlgorithm alg, const DistanceEntry& entry);
/// Same, encoding through `scratch` (cleared first) so bulk hashing reuses
/// one buffer instead of allocating per entry.
Digest HashDistanceEntry(HashAlgorithm alg, const DistanceEntry& entry,
                         ByteWriter* scratch);

/// Proof returned by MerkleBTree::Lookup: the entries themselves, their leaf
/// positions, and the sibling digests up to the root.
struct MerkleBTreeProof {
  std::vector<DistanceEntry> entries;      // sorted by key
  std::vector<uint32_t> leaf_indices;      // parallel to entries
  MerkleSubsetProof tree_proof;

  size_t SerializedSize() const;
  void Serialize(ByteWriter* out) const;
  static Result<MerkleBTreeProof> Deserialize(ByteReader* in);
  /// Decodes into `out`, reusing its vector capacity (the verification
  /// fast path decodes proof after proof into one scratch).
  static Status DeserializeInto(ByteReader* in, MerkleBTreeProof* out);
};

class MerkleBTree {
 public:
  /// Builds over `entries` (sorted internally; keys must be unique).
  static Result<MerkleBTree> Build(std::vector<DistanceEntry> entries,
                                   uint32_t fanout, HashAlgorithm alg);

  const Digest& root() const { return tree_.root(); }
  size_t size() const { return entries_.size(); }
  uint32_t fanout() const { return tree_.fanout(); }

  /// Bytes held by the structure: entries plus all tree digests (storage
  /// overhead accounting for the owner/provider).
  size_t StorageBytes() const {
    return entries_.size() * 16 +
           tree_.total_digests() * DigestSize(tree_.algorithm());
  }

  /// Value for `key`, or NotFound.
  Result<double> Get(uint64_t key) const;

  /// Multi-point lookup; every key must exist. Duplicate keys are collapsed.
  Result<MerkleBTreeProof> Lookup(std::span<const uint64_t> keys) const;

 private:
  MerkleBTree(std::vector<DistanceEntry> entries, MerkleTree tree)
      : entries_(std::move(entries)), tree_(std::move(tree)) {}

  std::vector<DistanceEntry> entries_;  // sorted by key
  MerkleTree tree_;
};

/// Client-side: recomputes the root from the proof alone. The caller then
/// (a) compares against the certified root and (b) checks the entry keys are
/// exactly the ones it expects.
Result<Digest> ReconstructBTreeRoot(const MerkleBTreeProof& proof);

/// Fast path: the leaf list, replay stacks and entry encoding all run in
/// caller-owned scratch, so a hot verifier reconstructs roots without
/// allocating. The plain overload is a thin wrapper.
Result<Digest> ReconstructBTreeRoot(const MerkleBTreeProof& proof,
                                    MerkleVerifyScratch& scratch,
                                    ByteWriter* encode_scratch);

}  // namespace spauth

#endif  // SPAUTH_MERKLE_MERKLE_BTREE_H_
