#include "merkle/merkle_btree.h"

#include <algorithm>

namespace spauth {

uint64_t PackNodePairKey(uint32_t a, uint32_t b) {
  const uint32_t lo_id = std::min(a, b);
  const uint32_t hi_id = std::max(a, b);
  return (static_cast<uint64_t>(lo_id) << 32) | hi_id;
}

void SerializeDistanceEntry(const DistanceEntry& entry, ByteWriter* out) {
  out->WriteU64(entry.key);
  out->WriteF64(entry.value);
}

Result<DistanceEntry> DeserializeDistanceEntry(ByteReader* in) {
  DistanceEntry entry;
  SPAUTH_RETURN_IF_ERROR(in->ReadU64(&entry.key));
  SPAUTH_RETURN_IF_ERROR(in->ReadF64(&entry.value));
  return entry;
}

Digest HashDistanceEntry(HashAlgorithm alg, const DistanceEntry& entry) {
  ByteWriter payload;
  return HashDistanceEntry(alg, entry, &payload);
}

Digest HashDistanceEntry(HashAlgorithm alg, const DistanceEntry& entry,
                         ByteWriter* scratch) {
  scratch->Clear();
  SerializeDistanceEntry(entry, scratch);
  return HashLeafPayload(alg, scratch->view());
}

size_t MerkleBTreeProof::SerializedSize() const {
  return 4 + entries.size() * (8 + 8 + 4) + tree_proof.SerializedSize();
}

void MerkleBTreeProof::Serialize(ByteWriter* out) const {
  out->WriteU32(static_cast<uint32_t>(entries.size()));
  for (size_t i = 0; i < entries.size(); ++i) {
    SerializeDistanceEntry(entries[i], out);
    out->WriteU32(leaf_indices[i]);
  }
  tree_proof.Serialize(out);
}

Result<MerkleBTreeProof> MerkleBTreeProof::Deserialize(ByteReader* in) {
  MerkleBTreeProof proof;
  SPAUTH_RETURN_IF_ERROR(DeserializeInto(in, &proof));
  return proof;
}

Status MerkleBTreeProof::DeserializeInto(ByteReader* in,
                                         MerkleBTreeProof* out) {
  uint32_t count = 0;
  SPAUTH_RETURN_IF_ERROR(in->ReadU32(&count));
  // Upfront length-vs-remaining check: a hostile count can never trigger a
  // resize larger than the bytes actually present.
  if (count > in->remaining() / 20) {  // 8B key + 8B value + 4B index
    return Status::Malformed("entry count exceeds buffer");
  }
  out->entries.resize(count);
  out->leaf_indices.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    SPAUTH_RETURN_IF_ERROR(in->ReadU64(&out->entries[i].key));
    SPAUTH_RETURN_IF_ERROR(in->ReadF64(&out->entries[i].value));
    SPAUTH_RETURN_IF_ERROR(in->ReadU32(&out->leaf_indices[i]));
  }
  return MerkleSubsetProof::DeserializeInto(in, &out->tree_proof);
}

Result<MerkleBTree> MerkleBTree::Build(std::vector<DistanceEntry> entries,
                                       uint32_t fanout, HashAlgorithm alg) {
  if (entries.empty()) {
    return Status::InvalidArgument("merkle btree needs at least one entry");
  }
  std::sort(entries.begin(), entries.end(),
            [](const DistanceEntry& a, const DistanceEntry& b) {
              return a.key < b.key;
            });
  for (size_t i = 1; i < entries.size(); ++i) {
    if (entries[i].key == entries[i - 1].key) {
      return Status::InvalidArgument("duplicate key in merkle btree");
    }
  }
  std::vector<Digest> leaves;
  leaves.reserve(entries.size());
  for (const DistanceEntry& entry : entries) {
    leaves.push_back(HashDistanceEntry(alg, entry));
  }
  SPAUTH_ASSIGN_OR_RETURN(MerkleTree tree,
                          MerkleTree::Build(std::move(leaves), fanout, alg));
  return MerkleBTree(std::move(entries), std::move(tree));
}

Result<double> MerkleBTree::Get(uint64_t key) const {
  auto it = std::lower_bound(entries_.begin(), entries_.end(), key,
                             [](const DistanceEntry& e, uint64_t k) {
                               return e.key < k;
                             });
  if (it == entries_.end() || it->key != key) {
    return Status::NotFound("key not present in merkle btree");
  }
  return it->value;
}

Result<MerkleBTreeProof> MerkleBTree::Lookup(
    std::span<const uint64_t> keys) const {
  if (keys.empty()) {
    return Status::InvalidArgument("lookup needs at least one key");
  }
  std::vector<uint64_t> sorted(keys.begin(), keys.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  MerkleBTreeProof proof;
  proof.entries.reserve(sorted.size());
  proof.leaf_indices.reserve(sorted.size());
  for (uint64_t key : sorted) {
    auto it = std::lower_bound(entries_.begin(), entries_.end(), key,
                               [](const DistanceEntry& e, uint64_t k) {
                                 return e.key < k;
                               });
    if (it == entries_.end() || it->key != key) {
      return Status::NotFound("key not present in merkle btree");
    }
    proof.entries.push_back(*it);
    proof.leaf_indices.push_back(
        static_cast<uint32_t>(it - entries_.begin()));
  }
  SPAUTH_ASSIGN_OR_RETURN(proof.tree_proof,
                          tree_.GenerateProof(proof.leaf_indices));
  return proof;
}

Result<Digest> ReconstructBTreeRoot(const MerkleBTreeProof& proof) {
  MerkleVerifyScratch scratch;
  ByteWriter encode_scratch;
  return ReconstructBTreeRoot(proof, scratch, &encode_scratch);
}

Result<Digest> ReconstructBTreeRoot(const MerkleBTreeProof& proof,
                                    MerkleVerifyScratch& scratch,
                                    ByteWriter* encode_scratch) {
  if (proof.entries.size() != proof.leaf_indices.size()) {
    return Status::Malformed("entry/index count mismatch");
  }
  std::vector<std::pair<uint32_t, Digest>>& leaves = scratch.leaves;
  leaves.clear();
  for (size_t i = 0; i < proof.entries.size(); ++i) {
    leaves.push_back({proof.leaf_indices[i],
                      HashDistanceEntry(proof.tree_proof.alg,
                                        proof.entries[i], encode_scratch)});
  }
  SPAUTH_RETURN_IF_ERROR(SortLeavesAndCheckUnique(
      &leaves, "duplicate leaf index in btree proof"));
  // ReconstructMerkleRoot reads `scratch.leaves` through the span and uses
  // only the frame/digest/level members of `scratch` — no aliasing hazard.
  return ReconstructMerkleRoot(proof.tree_proof, leaves, scratch);
}

}  // namespace spauth
