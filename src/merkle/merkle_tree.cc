#include "merkle/merkle_tree.h"

#include <algorithm>
#include <functional>

namespace spauth {

namespace {

constexpr uint8_t kLeafTag = 0x00;
constexpr uint8_t kInternalTag = 0x01;

// Number of leaves covered by one node at `level` (level 0 = leaves).
// Saturates instead of overflowing for tall trees.
uint64_t LeavesPerNode(uint32_t fanout, size_t level) {
  uint64_t span = 1;
  for (size_t i = 0; i < level; ++i) {
    if (span > (uint64_t{1} << 40)) {
      return span;  // already larger than any supported leaf count
    }
    span *= fanout;
  }
  return span;
}

// Shared shape iteration: number of nodes per level for a leaf count.
std::vector<size_t> LevelSizes(size_t num_leaves, uint32_t fanout) {
  std::vector<size_t> sizes = {num_leaves};
  while (sizes.back() > 1) {
    sizes.push_back((sizes.back() + fanout - 1) / fanout);
  }
  return sizes;
}

}  // namespace

Digest HashLeafPayload(HashAlgorithm alg, std::span<const uint8_t> payload) {
  Hasher h(alg);
  h.Update(&kLeafTag, 1);
  h.Update(payload);
  return h.Finish();
}

Digest HashInternalNode(HashAlgorithm alg, std::span<const Digest> children) {
  Hasher h(alg);
  h.Update(&kInternalTag, 1);
  for (const Digest& child : children) {
    h.Update(child.view());
  }
  return h.Finish();
}

size_t MerkleSubsetProof::SerializedSize() const {
  // num_leaves + fanout + alg + digest count + digests.
  return 4 + 4 + 1 + 4 + digests.size() * DigestSize(alg);
}

void MerkleSubsetProof::Serialize(ByteWriter* out) const {
  out->WriteU32(num_leaves);
  out->WriteU32(fanout);
  out->WriteU8(static_cast<uint8_t>(alg));
  out->WriteU32(static_cast<uint32_t>(digests.size()));
  for (const Digest& d : digests) {
    out->WriteBytes(d.view());
  }
}

Result<MerkleSubsetProof> MerkleSubsetProof::Deserialize(ByteReader* in) {
  MerkleSubsetProof proof;
  SPAUTH_RETURN_IF_ERROR(in->ReadU32(&proof.num_leaves));
  SPAUTH_RETURN_IF_ERROR(in->ReadU32(&proof.fanout));
  uint8_t alg_byte = 0;
  SPAUTH_RETURN_IF_ERROR(in->ReadU8(&alg_byte));
  SPAUTH_ASSIGN_OR_RETURN(proof.alg, ParseHashAlgorithm(alg_byte));
  if (proof.fanout < 2) {
    return Status::Malformed("merkle proof fanout must be >= 2");
  }
  uint32_t count = 0;
  SPAUTH_RETURN_IF_ERROR(in->ReadU32(&count));
  const size_t digest_size = DigestSize(proof.alg);
  if (count > in->remaining() / digest_size) {
    return Status::Malformed("digest count exceeds buffer");
  }
  proof.digests.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::vector<uint8_t> bytes;
    SPAUTH_RETURN_IF_ERROR(in->ReadBytes(digest_size, &bytes));
    proof.digests[i] = Digest::FromBytes(bytes);
  }
  return proof;
}

Result<MerkleTree> MerkleTree::Build(std::vector<Digest> leaf_digests,
                                     uint32_t fanout, HashAlgorithm alg) {
  if (leaf_digests.empty()) {
    return Status::InvalidArgument("merkle tree needs at least one leaf");
  }
  if (fanout < 2) {
    return Status::InvalidArgument("merkle tree fanout must be >= 2");
  }
  std::vector<std::vector<Digest>> levels;
  levels.push_back(std::move(leaf_digests));
  while (levels.back().size() > 1) {
    const std::vector<Digest>& below = levels.back();
    std::vector<Digest> level;
    level.reserve((below.size() + fanout - 1) / fanout);
    for (size_t i = 0; i < below.size(); i += fanout) {
      const size_t end = std::min(below.size(), i + fanout);
      level.push_back(HashInternalNode(
          alg, std::span<const Digest>(below.data() + i, end - i)));
    }
    levels.push_back(std::move(level));
  }
  return MerkleTree(std::move(levels), fanout, alg);
}

size_t MerkleTree::total_digests() const {
  size_t total = 0;
  for (const auto& level : levels_) {
    total += level.size();
  }
  return total;
}

Result<MerkleSubsetProof> MerkleTree::GenerateProof(
    std::span<const uint32_t> leaf_indices) const {
  for (size_t i = 0; i < leaf_indices.size(); ++i) {
    if (leaf_indices[i] >= num_leaves()) {
      return Status::InvalidArgument("leaf index out of range");
    }
    if (i > 0 && leaf_indices[i] <= leaf_indices[i - 1]) {
      return Status::InvalidArgument("leaf indices must be strictly ascending");
    }
  }
  if (leaf_indices.empty()) {
    return Status::InvalidArgument("subset proof needs at least one leaf");
  }

  MerkleSubsetProof proof;
  proof.num_leaves = static_cast<uint32_t>(num_leaves());
  proof.fanout = fanout_;
  proof.alg = alg_;

  // Root-down DFS. A subtree emits its own digest iff it contains no target
  // leaf; otherwise it recurses (at leaf level the target itself is omitted
  // — the verifier supplies it).
  const size_t top = levels_.size() - 1;
  auto has_target = [&](uint64_t lo, uint64_t hi) {
    auto it = std::lower_bound(leaf_indices.begin(), leaf_indices.end(), lo);
    return it != leaf_indices.end() && *it < hi;
  };
  // Explicit stack of (level, index).
  struct Frame {
    size_t level;
    size_t index;
  };
  std::vector<Frame> stack = {{top, 0}};
  // DFS with children pushed in reverse so traversal is left-to-right.
  std::vector<Digest>& out = proof.digests;
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const uint64_t span = LeavesPerNode(fanout_, f.level);
    const uint64_t lo = f.index * span;
    const uint64_t hi = std::min<uint64_t>(lo + span, num_leaves());
    if (!has_target(lo, hi)) {
      out.push_back(levels_[f.level][f.index]);
      continue;
    }
    if (f.level == 0) {
      continue;  // target leaf, supplied by the verifier
    }
    const size_t child_count = levels_[f.level - 1].size();
    const size_t first = f.index * fanout_;
    const size_t last = std::min(child_count, first + fanout_);
    for (size_t c = last; c-- > first;) {
      stack.push_back({f.level - 1, c});
    }
  }
  return proof;
}

Status MerkleTree::UpdateLeaf(uint32_t leaf_index, const Digest& new_digest) {
  if (leaf_index >= num_leaves()) {
    return Status::InvalidArgument("leaf index out of range");
  }
  if (new_digest.size() != DigestSize(alg_)) {
    return Status::InvalidArgument("digest size does not match tree");
  }
  levels_[0][leaf_index] = new_digest;
  size_t index = leaf_index;
  for (size_t level = 1; level < levels_.size(); ++level) {
    index /= fanout_;
    const std::vector<Digest>& below = levels_[level - 1];
    const size_t first = index * fanout_;
    const size_t last = std::min(below.size(), first + fanout_);
    levels_[level][index] = HashInternalNode(
        alg_, std::span<const Digest>(below.data() + first, last - first));
  }
  return Status::Ok();
}

Result<Digest> ReconstructMerkleRoot(
    const MerkleSubsetProof& proof,
    const std::map<uint32_t, Digest>& target_leaves) {
  if (proof.num_leaves == 0) {
    return Status::Malformed("empty merkle proof");
  }
  if (target_leaves.empty()) {
    return Status::Malformed("no target leaves supplied");
  }
  for (const auto& [index, digest] : target_leaves) {
    if (index >= proof.num_leaves) {
      return Status::Malformed("target leaf index out of range");
    }
    if (digest.size() != DigestSize(proof.alg)) {
      return Status::Malformed("target leaf digest has wrong size");
    }
  }

  const std::vector<size_t> sizes = LevelSizes(proof.num_leaves, proof.fanout);
  size_t cursor = 0;

  auto has_target = [&](uint64_t lo, uint64_t hi) {
    auto it = target_leaves.lower_bound(static_cast<uint32_t>(lo));
    return it != target_leaves.end() && it->first < hi;
  };

  // Recursive replay of the prover's DFS.
  std::function<Result<Digest>(size_t, size_t)> reconstruct =
      [&](size_t level, size_t index) -> Result<Digest> {
    const uint64_t span = LeavesPerNode(proof.fanout, level);
    const uint64_t lo = index * span;
    const uint64_t hi = std::min<uint64_t>(lo + span, proof.num_leaves);
    if (!has_target(lo, hi)) {
      if (cursor >= proof.digests.size()) {
        return Status::Malformed("merkle proof digest stream underflow");
      }
      return proof.digests[cursor++];
    }
    if (level == 0) {
      return target_leaves.at(static_cast<uint32_t>(lo));
    }
    const size_t child_count = sizes[level - 1];
    const size_t first = index * proof.fanout;
    const size_t last = std::min(child_count, first + proof.fanout);
    std::vector<Digest> children;
    children.reserve(last - first);
    for (size_t c = first; c < last; ++c) {
      SPAUTH_ASSIGN_OR_RETURN(Digest child, reconstruct(level - 1, c));
      children.push_back(child);
    }
    return HashInternalNode(proof.alg, children);
  };

  SPAUTH_ASSIGN_OR_RETURN(Digest root, reconstruct(sizes.size() - 1, 0));
  if (cursor != proof.digests.size()) {
    return Status::Malformed("merkle proof has unused digests");
  }
  return root;
}

}  // namespace spauth
