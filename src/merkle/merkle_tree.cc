#include "merkle/merkle_tree.h"

#include <algorithm>
#include <cstring>

#include "crypto/sha_multibuf.h"
#include "util/cow.h"

namespace spauth {

namespace {

constexpr uint8_t kLeafTag = 0x00;
constexpr uint8_t kInternalTag = 0x01;

// Number of leaves covered by one node at `level` (level 0 = leaves).
// Saturates instead of overflowing for tall trees.
uint64_t LeavesPerNode(uint32_t fanout, size_t level) {
  uint64_t span = 1;
  for (size_t i = 0; i < level; ++i) {
    if (span > (uint64_t{1} << 40)) {
      return span;  // already larger than any supported leaf count
    }
    span *= fanout;
  }
  return span;
}

// Shared shape iteration: number of nodes per level for a leaf count.
// Writes into `sizes` (cleared first) so scratch capacity is reused.
void LevelSizes(size_t num_leaves, uint32_t fanout, std::vector<size_t>* sizes) {
  sizes->clear();
  sizes->push_back(num_leaves);
  while (sizes->back() > 1) {
    sizes->push_back((sizes->back() + fanout - 1) / fanout);
  }
}

}  // namespace

Digest HashLeafPayload(HashAlgorithm alg, std::span<const uint8_t> payload) {
  Hasher h(alg);
  h.Update(&kLeafTag, 1);
  h.Update(payload);
  return h.Finish();
}

Digest HashInternalNode(HashAlgorithm alg, std::span<const Digest> children) {
  Hasher h(alg);
  h.Update(&kInternalTag, 1);
  for (const Digest& child : children) {
    h.Update(child.view());
  }
  return h.Finish();
}

namespace {

// Staging window for the batch hashers: bounds scratch memory while keeping
// every SIMD dispatch fed with full equal-length runs.
constexpr size_t kBatchWindow = 256;

}  // namespace

void HashLeafPayloadsBatch(HashAlgorithm alg,
                           std::span<const std::span<const uint8_t>> payloads,
                           Digest* out) {
  // The lane hashers want contiguous messages, so each window stages
  // tag-prefixed copies into one flat scratch buffer. The copy is linear in
  // payload bytes; the hashing it feeds is the dominant cost.
  std::vector<uint8_t> scratch;
  std::vector<const uint8_t*> ptrs;
  std::vector<size_t> sizes;
  for (size_t begin = 0; begin < payloads.size(); begin += kBatchWindow) {
    const size_t end = std::min(payloads.size(), begin + kBatchWindow);
    size_t total = 0;
    for (size_t i = begin; i < end; ++i) {
      total += 1 + payloads[i].size();
    }
    scratch.clear();
    scratch.reserve(total);
    ptrs.clear();
    sizes.clear();
    std::vector<size_t> offsets;
    for (size_t i = begin; i < end; ++i) {
      offsets.push_back(scratch.size());
      scratch.push_back(kLeafTag);
      scratch.insert(scratch.end(), payloads[i].begin(), payloads[i].end());
      sizes.push_back(1 + payloads[i].size());
    }
    for (size_t off : offsets) {
      ptrs.push_back(scratch.data() + off);  // after all inserts: stable
    }
    ShaHashMany(alg, ptrs.size(), ptrs.data(), sizes.data(), out + begin);
  }
}

void HashInternalLevel(HashAlgorithm alg, std::span<const Digest> below,
                       uint32_t fanout, std::vector<Digest>* out_level) {
  const size_t num_nodes = (below.size() + fanout - 1) / fanout;
  out_level->resize(num_nodes);
  const size_t ds = DigestSize(alg);
  const size_t full_msg = 1 + static_cast<size_t>(fanout) * ds;
  std::vector<uint8_t> scratch;
  std::vector<const uint8_t*> ptrs;
  std::vector<size_t> sizes;
  for (size_t begin = 0; begin < num_nodes; begin += kBatchWindow) {
    const size_t end = std::min(num_nodes, begin + kBatchWindow);
    scratch.clear();
    scratch.reserve((end - begin) * full_msg);
    ptrs.clear();
    sizes.clear();
    std::vector<size_t> offsets;
    for (size_t j = begin; j < end; ++j) {
      const size_t child_begin = j * fanout;
      const size_t child_end =
          std::min(below.size(), child_begin + fanout);
      offsets.push_back(scratch.size());
      scratch.push_back(kInternalTag);
      for (size_t c = child_begin; c < child_end; ++c) {
        const auto view = below[c].view();
        scratch.insert(scratch.end(), view.begin(), view.end());
      }
      sizes.push_back(scratch.size() - offsets.back());
    }
    for (size_t off : offsets) {
      ptrs.push_back(scratch.data() + off);  // after all inserts: stable
    }
    ShaHashMany(alg, ptrs.size(), ptrs.data(), sizes.data(),
                out_level->data() + begin);
  }
}

size_t MerkleSubsetProof::SerializedSize() const {
  // num_leaves + fanout + alg + digest count + digests.
  return 4 + 4 + 1 + 4 + digests.size() * DigestSize(alg);
}

void MerkleSubsetProof::Serialize(ByteWriter* out) const {
  out->WriteU32(num_leaves);
  out->WriteU32(fanout);
  out->WriteU8(static_cast<uint8_t>(alg));
  out->WriteU32(static_cast<uint32_t>(digests.size()));
  for (const Digest& d : digests) {
    out->WriteBytes(d.view());
  }
}

Result<MerkleSubsetProof> MerkleSubsetProof::Deserialize(ByteReader* in) {
  MerkleSubsetProof proof;
  SPAUTH_RETURN_IF_ERROR(DeserializeInto(in, &proof));
  return proof;
}

Status MerkleSubsetProof::DeserializeInto(ByteReader* in,
                                          MerkleSubsetProof* out) {
  SPAUTH_RETURN_IF_ERROR(in->ReadU32(&out->num_leaves));
  SPAUTH_RETURN_IF_ERROR(in->ReadU32(&out->fanout));
  uint8_t alg_byte = 0;
  SPAUTH_RETURN_IF_ERROR(in->ReadU8(&alg_byte));
  SPAUTH_ASSIGN_OR_RETURN(out->alg, ParseHashAlgorithm(alg_byte));
  if (out->num_leaves == 0) {
    return Status::Malformed("merkle proof covers no leaves");
  }
  if (out->fanout < 2) {
    return Status::Malformed("merkle proof fanout must be >= 2");
  }
  uint32_t count = 0;
  SPAUTH_RETURN_IF_ERROR(in->ReadU32(&count));
  // Upfront length-vs-remaining check: a hostile count can never trigger a
  // resize larger than the bytes actually present.
  const size_t digest_size = DigestSize(out->alg);
  if (count > in->remaining() / digest_size) {
    return Status::Malformed("digest count exceeds buffer");
  }
  out->digests.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    // Read straight into the digest storage; a reused Digest may carry a
    // stale tail (equality compares the full fixed array), so zero it.
    Digest& d = out->digests[i];
    SPAUTH_RETURN_IF_ERROR(in->ReadBytesInto(d.mutable_data(), digest_size));
    std::memset(d.mutable_data() + digest_size, 0,
                Digest::kMaxSize - digest_size);
    d.set_size(digest_size);
  }
  return Status::Ok();
}

Result<MerkleTree> MerkleTree::Build(std::vector<Digest> leaf_digests,
                                     uint32_t fanout, HashAlgorithm alg) {
  if (leaf_digests.empty()) {
    return Status::InvalidArgument("merkle tree needs at least one leaf");
  }
  if (fanout < 2) {
    return Status::InvalidArgument("merkle tree fanout must be >= 2");
  }
  std::vector<Level> levels;
  // Each flat level is hashed into its parent, then chunked and frozen —
  // the flat copy never coexists with more than one level of digests.
  std::vector<Digest> below = std::move(leaf_digests);
  while (below.size() > 1) {
    // Whole-level rebuilds go through the multi-buffer SHA lanes: all
    // nodes of a level share a message length (bar the ragged tail), so
    // the level hashes 8 nodes per compression dispatch.
    std::vector<Digest> level;
    HashInternalLevel(alg, below, fanout, &level);
    levels.push_back(FreezeLevel(std::move(below)));
    below = std::move(level);
  }
  levels.push_back(FreezeLevel(std::move(below)));
  return MerkleTree(std::move(levels), fanout, alg);
}

MerkleTree::Level MerkleTree::FreezeLevel(std::vector<Digest> flat) {
  Level level;
  level.size = flat.size();
  level.chunks.reserve((flat.size() + kChunkDigests - 1) / kChunkDigests);
  for (size_t i = 0; i < flat.size(); i += kChunkDigests) {
    const size_t end = std::min(flat.size(), i + kChunkDigests);
    level.chunks.push_back(std::make_shared<Chunk>(
        std::make_move_iterator(flat.begin() + static_cast<ptrdiff_t>(i)),
        std::make_move_iterator(flat.begin() + static_cast<ptrdiff_t>(end))));
  }
  return level;
}

size_t MerkleTree::total_digests() const {
  size_t total = 0;
  for (const Level& level : levels_) {
    total += level.size;
  }
  return total;
}

size_t MerkleTree::num_chunks() const {
  size_t total = 0;
  for (const Level& level : levels_) {
    total += level.chunks.size();
  }
  return total;
}

size_t MerkleTree::SharedChunksWith(const MerkleTree& other) const {
  size_t shared = 0;
  const size_t num_levels = std::min(levels_.size(), other.levels_.size());
  for (size_t l = 0; l < num_levels; ++l) {
    shared += SharedSpinePositions<Chunk>(levels_[l].chunks,
                                          other.levels_[l].chunks);
  }
  return shared;
}

Result<MerkleSubsetProof> MerkleTree::GenerateProof(
    std::span<const uint32_t> leaf_indices) const {
  MerkleVerifyScratch scratch;
  MerkleSubsetProof proof;
  SPAUTH_RETURN_IF_ERROR(GenerateProofInto(leaf_indices, scratch, &proof));
  return proof;
}

Status MerkleTree::GenerateProofInto(std::span<const uint32_t> leaf_indices,
                                     MerkleVerifyScratch& scratch,
                                     MerkleSubsetProof* out_proof) const {
  for (size_t i = 0; i < leaf_indices.size(); ++i) {
    if (leaf_indices[i] >= num_leaves()) {
      return Status::InvalidArgument("leaf index out of range");
    }
    if (i > 0 && leaf_indices[i] <= leaf_indices[i - 1]) {
      return Status::InvalidArgument("leaf indices must be strictly ascending");
    }
  }
  if (leaf_indices.empty()) {
    return Status::InvalidArgument("subset proof needs at least one leaf");
  }

  out_proof->num_leaves = static_cast<uint32_t>(num_leaves());
  out_proof->fanout = fanout_;
  out_proof->alg = alg_;
  out_proof->digests.clear();

  // Root-down DFS. A subtree emits its own digest iff it contains no target
  // leaf; otherwise it recurses (at leaf level the target itself is omitted
  // — the verifier supplies it).
  const size_t top = levels_.size() - 1;
  auto has_target = [&](uint64_t lo, uint64_t hi) {
    auto it = std::lower_bound(leaf_indices.begin(), leaf_indices.end(), lo);
    return it != leaf_indices.end() && *it < hi;
  };
  // Explicit stack of (level, index), reused across calls via `scratch`.
  std::vector<MerkleVerifyScratch::Frame>& stack = scratch.frames;
  stack.clear();
  stack.push_back({static_cast<uint32_t>(top), 0, 0});
  // DFS with children pushed in reverse so traversal is left-to-right.
  std::vector<Digest>& out = out_proof->digests;
  while (!stack.empty()) {
    const MerkleVerifyScratch::Frame f = stack.back();
    stack.pop_back();
    const uint64_t span = LeavesPerNode(fanout_, f.level);
    const uint64_t lo = f.index * span;
    const uint64_t hi = std::min<uint64_t>(lo + span, num_leaves());
    if (!has_target(lo, hi)) {
      out.push_back(NodeAt(f.level, f.index));
      continue;
    }
    if (f.level == 0) {
      continue;  // target leaf, supplied by the verifier
    }
    const size_t child_count = levels_[f.level - 1].size;
    const size_t first = static_cast<size_t>(f.index) * fanout_;
    const size_t last = std::min(child_count, first + fanout_);
    for (size_t c = last; c-- > first;) {
      stack.push_back({f.level - 1, static_cast<uint32_t>(c), 0});
    }
  }
  return Status::Ok();
}

Digest& MerkleTree::MutableNode(size_t level, size_t index,
                                size_t* copied_bytes) {
  Chunk& chunk = EnsureUniqueChunk(
      levels_[level].chunks[index / kChunkDigests], copied_bytes,
      [&](const Chunk& c) { return c.size() * DigestSize(alg_); });
  return chunk[index % kChunkDigests];
}

Status MerkleTree::UpdateLeaf(uint32_t leaf_index, const Digest& new_digest,
                              size_t* copied_bytes) {
  if (leaf_index >= num_leaves()) {
    return Status::InvalidArgument("leaf index out of range");
  }
  if (new_digest.size() != DigestSize(alg_)) {
    return Status::InvalidArgument("digest size does not match tree");
  }
  MutableNode(0, leaf_index, copied_bytes) = new_digest;
  size_t index = leaf_index;
  // Children of one internal node may straddle a chunk boundary; gather
  // them into a small contiguous buffer for hashing (UpdateLeaf is the
  // owner-side maintenance path, not a serving hot path).
  std::vector<Digest> children;
  children.reserve(fanout_);
  for (size_t level = 1; level < levels_.size(); ++level) {
    index /= fanout_;
    const size_t first = index * fanout_;
    const size_t last = std::min(levels_[level - 1].size, first + fanout_);
    children.clear();
    for (size_t c = first; c < last; ++c) {
      children.push_back(NodeAt(level - 1, c));
    }
    MutableNode(level, index, copied_bytes) =
        HashInternalNode(alg_, children);
  }
  return Status::Ok();
}

void MerkleTree::AppendNode(size_t level, const Digest& digest,
                            size_t* copied_bytes) {
  Level& lvl = levels_[level];
  if (lvl.size % kChunkDigests == 0) {
    auto chunk = std::make_shared<Chunk>();
    chunk->reserve(kChunkDigests);
    chunk->push_back(digest);
    lvl.chunks.push_back(std::move(chunk));
  } else {
    Chunk& chunk = EnsureUniqueChunk(
        lvl.chunks.back(), copied_bytes,
        [&](const Chunk& c) { return c.size() * DigestSize(alg_); });
    chunk.push_back(digest);
  }
  ++lvl.size;
}

void MerkleTree::PopNode(size_t level, size_t* copied_bytes) {
  Level& lvl = levels_[level];
  if (lvl.size % kChunkDigests == 1) {
    lvl.chunks.pop_back();  // the sole digest of the ragged chunk goes away
  } else {
    Chunk& chunk = EnsureUniqueChunk(
        lvl.chunks.back(), copied_bytes,
        [&](const Chunk& c) { return c.size() * DigestSize(alg_); });
    chunk.pop_back();
  }
  --lvl.size;
}

Status MerkleTree::AppendLeaf(const Digest& new_digest, size_t* copied_bytes) {
  if (new_digest.size() != DigestSize(alg_)) {
    return Status::InvalidArgument("digest size does not match tree");
  }
  if (num_leaves() >= 0xffffffffu) {
    return Status::InvalidArgument("merkle tree leaf index space exhausted");
  }
  AppendNode(0, new_digest, copied_bytes);
  // Only the right edge changes: the new leaf is the last leaf, so at every
  // level the affected parent is the last node of the new ceil-chain shape
  // (a node whose child range grew, a brand-new node over the ragged tail,
  // or — when the old root gets a sibling — a brand-new root level).
  std::vector<Digest> children;
  children.reserve(fanout_);
  size_t level = 1;
  while (true) {
    const size_t child_size = levels_[level - 1].size;
    if (child_size == 1) {
      break;  // the child level is the root
    }
    if (level == levels_.size()) {
      levels_.push_back(Level{});
    }
    const size_t new_size = (child_size + fanout_ - 1) / fanout_;
    const size_t parent = new_size - 1;
    const size_t first = parent * fanout_;
    const size_t last = std::min(child_size, first + fanout_);
    children.clear();
    for (size_t c = first; c < last; ++c) {
      children.push_back(NodeAt(level - 1, c));
    }
    const Digest digest = HashInternalNode(alg_, children);
    if (levels_[level].size < new_size) {
      AppendNode(level, digest, copied_bytes);
    } else {
      MutableNode(level, parent, copied_bytes) = digest;
    }
    ++level;
  }
  return Status::Ok();
}

Status MerkleTree::RemoveLastLeaf(size_t* copied_bytes) {
  if (num_leaves() <= 1) {
    return Status::FailedPrecondition("merkle tree needs at least one leaf");
  }
  PopNode(0, copied_bytes);
  // AppendLeaf's mirror image: walk the right edge, dropping the node over
  // a tail that disappeared and re-hashing the (new) last parent whose
  // child range shrank. A level whose child level collapsed to one node is
  // the first level past the new root — everything above it goes.
  std::vector<Digest> children;
  children.reserve(fanout_);
  size_t level = 1;
  while (level < levels_.size()) {
    const size_t child_size = levels_[level - 1].size;
    if (child_size == 1) {
      levels_.resize(level);  // the child level is the new root
      break;
    }
    const size_t new_size = (child_size + fanout_ - 1) / fanout_;
    if (levels_[level].size > new_size) {
      PopNode(level, copied_bytes);
    }
    const size_t parent = new_size - 1;
    const size_t first = parent * fanout_;
    const size_t last = std::min(child_size, first + fanout_);
    children.clear();
    for (size_t c = first; c < last; ++c) {
      children.push_back(NodeAt(level - 1, c));
    }
    MutableNode(level, parent, copied_bytes) = HashInternalNode(alg_, children);
    ++level;
  }
  return Status::Ok();
}

Status SortLeavesAndCheckUnique(
    std::vector<std::pair<uint32_t, Digest>>* leaves,
    std::string_view duplicate_message) {
  std::sort(leaves->begin(), leaves->end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (size_t i = 1; i < leaves->size(); ++i) {
    if ((*leaves)[i].first == (*leaves)[i - 1].first) {
      return Status::Malformed(std::string(duplicate_message));
    }
  }
  return Status::Ok();
}

Result<Digest> ReconstructMerkleRoot(
    const MerkleSubsetProof& proof,
    const std::map<uint32_t, Digest>& target_leaves) {
  MerkleVerifyScratch scratch;
  scratch.leaves.reserve(target_leaves.size());
  for (const auto& [index, digest] : target_leaves) {
    scratch.leaves.push_back({index, digest});  // map order: already sorted
  }
  return ReconstructMerkleRoot(proof, scratch.leaves, scratch);
}

Result<Digest> ReconstructMerkleRoot(
    const MerkleSubsetProof& proof,
    std::span<const std::pair<uint32_t, Digest>> target_leaves,
    MerkleVerifyScratch& scratch) {
  if (proof.num_leaves == 0) {
    return Status::Malformed("empty merkle proof");
  }
  if (target_leaves.empty()) {
    return Status::Malformed("no target leaves supplied");
  }
  for (size_t i = 0; i < target_leaves.size(); ++i) {
    if (target_leaves[i].first >= proof.num_leaves) {
      return Status::Malformed("target leaf index out of range");
    }
    if (target_leaves[i].second.size() != DigestSize(proof.alg)) {
      return Status::Malformed("target leaf digest has wrong size");
    }
    if (i > 0 && target_leaves[i].first <= target_leaves[i - 1].first) {
      return Status::Malformed("target leaves not strictly ascending");
    }
  }

  LevelSizes(proof.num_leaves, proof.fanout, &scratch.level_sizes);
  const std::vector<size_t>& sizes = scratch.level_sizes;
  size_t cursor = 0;

  auto has_target = [&](uint64_t lo, uint64_t hi) {
    auto it = std::lower_bound(
        target_leaves.begin(), target_leaves.end(), lo,
        [](const std::pair<uint32_t, Digest>& leaf, uint64_t value) {
          return leaf.first < value;
        });
    return it != target_leaves.end() && it->first < hi;
  };

  // Iterative replay of the prover's root-down, left-to-right DFS: a visit
  // frame either emits a digest (proof stream or target leaf) onto the value
  // stack or pushes a combine frame plus its children (reversed, so the
  // leftmost child runs first); a combine frame hashes the top
  // `pending_children` digests — which are exactly its children, in order —
  // into one internal-node digest.
  std::vector<MerkleVerifyScratch::Frame>& frames = scratch.frames;
  std::vector<Digest>& value_stack = scratch.digest_stack;
  frames.clear();
  value_stack.clear();
  frames.push_back({static_cast<uint32_t>(sizes.size() - 1), 0, 0});
  while (!frames.empty()) {
    const MerkleVerifyScratch::Frame f = frames.back();
    frames.pop_back();
    if (f.pending_children > 0) {
      const size_t first = value_stack.size() - f.pending_children;
      const Digest parent = HashInternalNode(
          proof.alg, std::span<const Digest>(value_stack.data() + first,
                                            f.pending_children));
      value_stack.resize(first);
      value_stack.push_back(parent);
      continue;
    }
    const uint64_t span = LeavesPerNode(proof.fanout, f.level);
    const uint64_t lo = f.index * span;
    const uint64_t hi = std::min<uint64_t>(lo + span, proof.num_leaves);
    if (!has_target(lo, hi)) {
      if (cursor >= proof.digests.size()) {
        return Status::Malformed("merkle proof digest stream underflow");
      }
      value_stack.push_back(proof.digests[cursor++]);
      continue;
    }
    if (f.level == 0) {
      auto it = std::lower_bound(
          target_leaves.begin(), target_leaves.end(), lo,
          [](const std::pair<uint32_t, Digest>& leaf, uint64_t value) {
            return leaf.first < value;
          });
      value_stack.push_back(it->second);
      continue;
    }
    const size_t child_count = sizes[f.level - 1];
    const size_t first = static_cast<size_t>(f.index) * proof.fanout;
    const size_t last = std::min(child_count, first + proof.fanout);
    frames.push_back({f.level, f.index,
                      static_cast<uint32_t>(last - first)});
    for (size_t c = last; c-- > first;) {
      frames.push_back({f.level - 1, static_cast<uint32_t>(c), 0});
    }
  }
  if (cursor != proof.digests.size()) {
    return Status::Malformed("merkle proof has unused digests");
  }
  return value_stack.front();
}

}  // namespace spauth
