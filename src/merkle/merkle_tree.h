// n-ary Merkle hash tree with subset proofs (Sections II-A and III-B).
//
// The tree is built over an ordered sequence of leaf digests; internal nodes
// hash the concatenation of their children. The *fanout* (number of children
// per node, Table II: 2..32) and the hash algorithm are configurable.
//
// Subset proofs follow Merkle [11] / Martel et al. [12] exactly as the paper
// states: a digest h_i enters the proof iff (i) h_i's subtree contains no
// target leaf and (ii) its parent's subtree does. Digests are emitted in
// deterministic root-down, left-to-right DFS order; the verifier replays the
// same recursion (it knows num_leaves and fanout) and consumes the stream.
//
// Domain separation: leaves are hashed as H(0x00 || payload), internal nodes
// as H(0x01 || child digests), preventing leaf/internal confusion attacks.
//
// Persistence: every level is stored as immutable shared_ptr *chunks* of
// kChunkDigests digests. Copying a tree copies only the chunk-pointer
// spines (structural sharing — no digest is duplicated), and UpdateLeaf
// path-copies exactly the chunks on the updated leaf's root path before
// rewriting them: O(f log_f n) fresh hashes, O(kChunkDigests · log_f n)
// fresh digest bytes. A chunk that is uniquely owned is rewritten in place
// (no copy); a chunk aliased by another tree version is never mutated, so
// retired snapshot readers can keep replaying proofs from it concurrently
// with owner-side updates.
#ifndef SPAUTH_MERKLE_MERKLE_TREE_H_
#define SPAUTH_MERKLE_MERKLE_TREE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "crypto/digest.h"
#include "util/byte_buffer.h"
#include "util/status.h"

namespace spauth {

/// Hashes a leaf payload with the leaf domain tag.
Digest HashLeafPayload(HashAlgorithm alg, std::span<const uint8_t> payload);

/// Hashes the concatenation of child digests with the internal-node tag.
Digest HashInternalNode(HashAlgorithm alg, std::span<const Digest> children);

/// Batch form of HashLeafPayload funneled through the multi-buffer SHA
/// lanes (crypto/sha_multibuf.h): out[i] == HashLeafPayload(alg,
/// payloads[i]), byte-identical. `out` must have room for payloads.size()
/// digests. Owner-side ADS builds hash every tuple through this.
void HashLeafPayloadsBatch(HashAlgorithm alg,
                           std::span<const std::span<const uint8_t>> payloads,
                           Digest* out);

/// Hashes one whole internal level in lane batches: out_level is resized to
/// ceil(below.size() / fanout) and out_level[j] == HashInternalNode over
/// below[j*fanout .. j*fanout+fanout). Every node of a level except the
/// last ragged one has the same message length, so the level maps onto
/// full SIMD lanes — this is the Merkle rebuild fast path.
void HashInternalLevel(HashAlgorithm alg, std::span<const Digest> below,
                       uint32_t fanout, std::vector<Digest>* out_level);

/// The sibling digests accompanying a leaf subset, plus the tree shape
/// needed to replay the reconstruction.
struct MerkleSubsetProof {
  uint32_t num_leaves = 0;
  uint32_t fanout = 0;
  HashAlgorithm alg = HashAlgorithm::kSha1;
  std::vector<Digest> digests;  // deterministic DFS order

  size_t num_digests() const { return digests.size(); }
  /// Serialized wire size in bytes (what the client downloads).
  size_t SerializedSize() const;
  void Serialize(ByteWriter* out) const;
  static Result<MerkleSubsetProof> Deserialize(ByteReader* in);
  /// Decodes into `out`, reusing its digest vector's capacity (the hot
  /// client verify path decodes thousands of proofs into one scratch).
  static Status DeserializeInto(ByteReader* in, MerkleSubsetProof* out);
};

/// Reusable scratch for subset-proof replay (and generation): the explicit
/// DFS frame stack, the digest value stack, the per-level node counts and a
/// sorted (leaf index, digest) buffer for callers assembling target leaves.
/// Everything keeps its capacity across calls, so a hot verifier replays
/// proofs without allocating. Single-threaded; one per verify workspace.
struct MerkleVerifyScratch {
  struct Frame {
    uint32_t level;
    uint32_t index;
    uint32_t pending_children;  // 0: visit phase; >0: combine phase
  };
  std::vector<Frame> frames;
  std::vector<Digest> digest_stack;
  std::vector<size_t> level_sizes;
  std::vector<std::pair<uint32_t, Digest>> leaves;  // callers' target buffer
};

class MerkleTree {
 public:
  /// Digests per immutable level chunk (the structural-sharing grain):
  /// small enough that one path copy stays O(log n) bytes, large enough
  /// that the chunk-pointer spine is a small fraction of the level.
  static constexpr size_t kChunkDigests = 8;

  /// Builds the tree over `leaf_digests` (already leaf-domain hashed).
  /// Requires at least one leaf and fanout >= 2.
  static Result<MerkleTree> Build(std::vector<Digest> leaf_digests,
                                  uint32_t fanout, HashAlgorithm alg);

  const Digest& root() const { return NodeAt(levels_.size() - 1, 0); }
  size_t num_leaves() const { return levels_.front().size; }
  /// The leaf digest cached at build time (no re-hash needed).
  const Digest& leaf(size_t index) const { return NodeAt(0, index); }
  uint32_t fanout() const { return fanout_; }
  HashAlgorithm algorithm() const { return alg_; }
  /// Total digests stored (storage accounting).
  size_t total_digests() const;

  /// Proof for the given sorted, duplicate-free leaf indices.
  Result<MerkleSubsetProof> GenerateProof(
      std::span<const uint32_t> leaf_indices) const;

  /// Fast path: same proof, but the DFS frame stack lives in `scratch` and
  /// `out_proof`'s digest vector keeps its capacity, so a hot prover
  /// generates proofs without allocating. GenerateProof is a thin wrapper.
  Status GenerateProofInto(std::span<const uint32_t> leaf_indices,
                           MerkleVerifyScratch& scratch,
                           MerkleSubsetProof* out_proof) const;

  /// Replaces one leaf digest and recomputes the O(f log_f n) path of
  /// internal digests up to the root. This is what makes owner-side
  /// updates (e.g. an edge-weight change re-hashing two tuples) cheap:
  /// no full rebuild, only a root re-sign. Chunks shared with another
  /// tree version are path-copied first (the other version is never
  /// disturbed); `copied_bytes`, when non-null, accumulates the digest
  /// bytes those copies duplicated — 0 when every touched chunk was
  /// already uniquely owned.
  Status UpdateLeaf(uint32_t leaf_index, const Digest& new_digest,
                    size_t* copied_bytes = nullptr);

  /// Appends one leaf at index num_leaves() and recomputes the right-edge
  /// path of internal digests — the structural growth half of owner-side
  /// updates (an AddVertex appends the new node's tuple leaf). Level
  /// shapes follow the ceil chain of the new leaf count: the last parent
  /// of every level is re-hashed, a level that overflows gains a node, and
  /// a new root level opens when the old root gets a sibling. Chunks
  /// shared with another tree version are copy-on-written exactly like
  /// UpdateLeaf, so retired snapshots keep their old shape untouched.
  Status AppendLeaf(const Digest& new_digest, size_t* copied_bytes = nullptr);

  /// Removes the last leaf and shrinks the shape back — the exact inverse
  /// of AppendLeaf (a level whose child level collapsed to a single node
  /// is dropped). The tree keeps its one-leaf minimum.
  Status RemoveLastLeaf(size_t* copied_bytes = nullptr);

  /// Chunks across all levels (structural-sharing accounting).
  size_t num_chunks() const;
  /// Chunks pointer-identical to `other`'s at the same position — the
  /// untouched-subtree sharing the differential tests assert. Trees of
  /// different shapes share nothing.
  size_t SharedChunksWith(const MerkleTree& other) const;

 private:
  using Chunk = std::vector<Digest>;
  /// One level: an immutable-chunk spine plus the level's digest count
  /// (the last chunk may be partial).
  struct Level {
    std::vector<std::shared_ptr<Chunk>> chunks;
    size_t size = 0;
  };

  MerkleTree(std::vector<Level> levels, uint32_t fanout, HashAlgorithm alg)
      : levels_(std::move(levels)), fanout_(fanout), alg_(alg) {}

  /// Moves a flat digest vector into the chunked immutable-level form.
  static Level FreezeLevel(std::vector<Digest> flat);

  const Digest& NodeAt(size_t level, size_t index) const {
    return (*levels_[level].chunks[index / kChunkDigests])
        [index % kChunkDigests];
  }
  /// The writable slot for (level, index), copy-on-write: a chunk still
  /// aliased by another tree version is duplicated first (and its bytes
  /// added to `copied_bytes`); a uniquely owned chunk is handed out as is.
  Digest& MutableNode(size_t level, size_t index, size_t* copied_bytes);

  /// Appends one digest at the end of `level`, growing the chunk spine
  /// (copy-on-write on the ragged tail chunk).
  void AppendNode(size_t level, const Digest& digest, size_t* copied_bytes);
  /// Drops the last digest of `level` — AppendNode's inverse.
  void PopNode(size_t level, size_t* copied_bytes);

  std::vector<Level> levels_;  // [0] = leaves, back() = {root}
  uint32_t fanout_;
  HashAlgorithm alg_;
};

/// Recomputes the root from the target leaves (index -> leaf digest) and the
/// proof stream. Fails if the proof shape is inconsistent with the leaf set.
/// Comparing the result against a signed root completes verification.
Result<Digest> ReconstructMerkleRoot(
    const MerkleSubsetProof& proof,
    const std::map<uint32_t, Digest>& target_leaves);

/// Fast-path replay: `target_leaves` must be sorted by leaf index and
/// duplicate-free; the explicit-stack traversal runs entirely inside
/// `scratch`, so a hot verifier replays proofs with zero steady-state
/// allocations. The map overload above is a thin wrapper over this one.
Result<Digest> ReconstructMerkleRoot(
    const MerkleSubsetProof& proof,
    std::span<const std::pair<uint32_t, Digest>> target_leaves,
    MerkleVerifyScratch& scratch);

/// Sorts a caller-assembled (leaf index, digest) buffer into the order
/// ReconstructMerkleRoot requires and rejects duplicate indices with a
/// Malformed status carrying `duplicate_message` (proof-type-specific so
/// callers keep their established error text).
Status SortLeavesAndCheckUnique(
    std::vector<std::pair<uint32_t, Digest>>* leaves,
    std::string_view duplicate_message);

}  // namespace spauth

#endif  // SPAUTH_MERKLE_MERKLE_TREE_H_
