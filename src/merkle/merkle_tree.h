// n-ary Merkle hash tree with subset proofs (Sections II-A and III-B).
//
// The tree is built over an ordered sequence of leaf digests; internal nodes
// hash the concatenation of their children. The *fanout* (number of children
// per node, Table II: 2..32) and the hash algorithm are configurable.
//
// Subset proofs follow Merkle [11] / Martel et al. [12] exactly as the paper
// states: a digest h_i enters the proof iff (i) h_i's subtree contains no
// target leaf and (ii) its parent's subtree does. Digests are emitted in
// deterministic root-down, left-to-right DFS order; the verifier replays the
// same recursion (it knows num_leaves and fanout) and consumes the stream.
//
// Domain separation: leaves are hashed as H(0x00 || payload), internal nodes
// as H(0x01 || child digests), preventing leaf/internal confusion attacks.
#ifndef SPAUTH_MERKLE_MERKLE_TREE_H_
#define SPAUTH_MERKLE_MERKLE_TREE_H_

#include <cstdint>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "crypto/digest.h"
#include "util/byte_buffer.h"
#include "util/status.h"

namespace spauth {

/// Hashes a leaf payload with the leaf domain tag.
Digest HashLeafPayload(HashAlgorithm alg, std::span<const uint8_t> payload);

/// Hashes the concatenation of child digests with the internal-node tag.
Digest HashInternalNode(HashAlgorithm alg, std::span<const Digest> children);

/// The sibling digests accompanying a leaf subset, plus the tree shape
/// needed to replay the reconstruction.
struct MerkleSubsetProof {
  uint32_t num_leaves = 0;
  uint32_t fanout = 0;
  HashAlgorithm alg = HashAlgorithm::kSha1;
  std::vector<Digest> digests;  // deterministic DFS order

  size_t num_digests() const { return digests.size(); }
  /// Serialized wire size in bytes (what the client downloads).
  size_t SerializedSize() const;
  void Serialize(ByteWriter* out) const;
  static Result<MerkleSubsetProof> Deserialize(ByteReader* in);
  /// Decodes into `out`, reusing its digest vector's capacity (the hot
  /// client verify path decodes thousands of proofs into one scratch).
  static Status DeserializeInto(ByteReader* in, MerkleSubsetProof* out);
};

/// Reusable scratch for subset-proof replay (and generation): the explicit
/// DFS frame stack, the digest value stack, the per-level node counts and a
/// sorted (leaf index, digest) buffer for callers assembling target leaves.
/// Everything keeps its capacity across calls, so a hot verifier replays
/// proofs without allocating. Single-threaded; one per verify workspace.
struct MerkleVerifyScratch {
  struct Frame {
    uint32_t level;
    uint32_t index;
    uint32_t pending_children;  // 0: visit phase; >0: combine phase
  };
  std::vector<Frame> frames;
  std::vector<Digest> digest_stack;
  std::vector<size_t> level_sizes;
  std::vector<std::pair<uint32_t, Digest>> leaves;  // callers' target buffer
};

class MerkleTree {
 public:
  /// Builds the tree over `leaf_digests` (already leaf-domain hashed).
  /// Requires at least one leaf and fanout >= 2.
  static Result<MerkleTree> Build(std::vector<Digest> leaf_digests,
                                  uint32_t fanout, HashAlgorithm alg);

  const Digest& root() const { return levels_.back()[0]; }
  size_t num_leaves() const { return levels_[0].size(); }
  /// The leaf digest cached at build time (no re-hash needed).
  const Digest& leaf(size_t index) const { return levels_[0][index]; }
  uint32_t fanout() const { return fanout_; }
  HashAlgorithm algorithm() const { return alg_; }
  /// Total digests stored (storage accounting).
  size_t total_digests() const;

  /// Proof for the given sorted, duplicate-free leaf indices.
  Result<MerkleSubsetProof> GenerateProof(
      std::span<const uint32_t> leaf_indices) const;

  /// Fast path: same proof, but the DFS frame stack lives in `scratch` and
  /// `out_proof`'s digest vector keeps its capacity, so a hot prover
  /// generates proofs without allocating. GenerateProof is a thin wrapper.
  Status GenerateProofInto(std::span<const uint32_t> leaf_indices,
                           MerkleVerifyScratch& scratch,
                           MerkleSubsetProof* out_proof) const;

  /// Replaces one leaf digest and recomputes the O(f log_f n) path of
  /// internal digests up to the root. This is what makes owner-side
  /// updates (e.g. an edge-weight change re-hashing two tuples) cheap:
  /// no full rebuild, only a root re-sign.
  Status UpdateLeaf(uint32_t leaf_index, const Digest& new_digest);

 private:
  MerkleTree(std::vector<std::vector<Digest>> levels, uint32_t fanout,
             HashAlgorithm alg)
      : levels_(std::move(levels)), fanout_(fanout), alg_(alg) {}

  std::vector<std::vector<Digest>> levels_;  // [0] = leaves, back() = {root}
  uint32_t fanout_;
  HashAlgorithm alg_;
};

/// Recomputes the root from the target leaves (index -> leaf digest) and the
/// proof stream. Fails if the proof shape is inconsistent with the leaf set.
/// Comparing the result against a signed root completes verification.
Result<Digest> ReconstructMerkleRoot(
    const MerkleSubsetProof& proof,
    const std::map<uint32_t, Digest>& target_leaves);

/// Fast-path replay: `target_leaves` must be sorted by leaf index and
/// duplicate-free; the explicit-stack traversal runs entirely inside
/// `scratch`, so a hot verifier replays proofs with zero steady-state
/// allocations. The map overload above is a thin wrapper over this one.
Result<Digest> ReconstructMerkleRoot(
    const MerkleSubsetProof& proof,
    std::span<const std::pair<uint32_t, Digest>> target_leaves,
    MerkleVerifyScratch& scratch);

/// Sorts a caller-assembled (leaf index, digest) buffer into the order
/// ReconstructMerkleRoot requires and rejects duplicate indices with a
/// Malformed status carrying `duplicate_message` (proof-type-specific so
/// callers keep their established error text).
Status SortLeavesAndCheckUnique(
    std::vector<std::pair<uint32_t, Digest>>* leaves,
    std::string_view duplicate_message);

}  // namespace spauth

#endif  // SPAUTH_MERKLE_MERKLE_TREE_H_
