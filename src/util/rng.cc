#include "util/rng.h"

namespace spauth {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(&sm);
  }
}

uint64_t Rng::NextU64() {
  // xoshiro256** by Blackman & Vigna.
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

void Rng::FillBytes(uint8_t* out, size_t size) {
  size_t i = 0;
  while (i + 8 <= size) {
    uint64_t v = NextU64();
    for (int b = 0; b < 8; ++b) {
      out[i++] = static_cast<uint8_t>(v >> (8 * b));
    }
  }
  if (i < size) {
    uint64_t v = NextU64();
    for (int b = 0; i < size; ++b) {
      out[i++] = static_cast<uint8_t>(v >> (8 * b));
    }
  }
}

}  // namespace spauth
