#include "util/failpoint.h"

#include <utility>

#include "util/hash_mix.h"
#include "util/rng.h"

namespace spauth {

FailPointRegistry& FailPointRegistry::Global() {
  // Leaked singleton: seams may be hit during static destruction of
  // engine-owning test fixtures.
  static FailPointRegistry* registry = new FailPointRegistry();
  return *registry;
}

void FailPointRegistry::Arm(std::string name, FailPointSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = points_.try_emplace(std::move(name));
  if (inserted) {
    it->second = std::make_shared<Point>();
    armed_count_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Re-arm resets the schedule position and the books.
    it->second->hits.store(0, std::memory_order_relaxed);
    it->second->fires.store(0, std::memory_order_relaxed);
  }
  it->second->spec = spec;
}

void FailPointRegistry::ArmProbability(std::string name, double probability,
                                       uint64_t seed) {
  FailPointSpec spec;
  spec.mode = FailPointMode::kProbability;
  spec.probability = probability;
  spec.seed = seed;
  Arm(std::move(name), spec);
}

void FailPointRegistry::ArmEveryNth(std::string name, uint64_t n) {
  FailPointSpec spec;
  spec.mode = FailPointMode::kEveryNth;
  spec.n = n == 0 ? 1 : n;
  Arm(std::move(name), spec);
}

void FailPointRegistry::ArmOneShot(std::string name, uint64_t after) {
  FailPointSpec spec;
  spec.mode = FailPointMode::kOneShot;
  spec.after = after;
  Arm(std::move(name), spec);
}

void FailPointRegistry::Disarm(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(std::string(name));
  if (it != points_.end()) {
    points_.erase(it);
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FailPointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_count_.fetch_sub(points_.size(), std::memory_order_relaxed);
  points_.clear();
}

bool FailPointRegistry::ShouldFail(std::string_view name, uint64_t arg) {
  std::shared_ptr<Point> point;
  FailPointSpec spec;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = points_.find(std::string(name));
    if (it == points_.end()) {
      return false;
    }
    point = it->second;  // keeps the point alive across a concurrent Disarm
    spec = point->spec;
  }
  if (spec.has_match_arg && arg != spec.match_arg) {
    return false;
  }
  const uint64_t hit = point->hits.fetch_add(1, std::memory_order_relaxed);
  bool fire = false;
  switch (spec.mode) {
    case FailPointMode::kProbability: {
      // One seeded Rng stream per hit index: replayable from (seed, hit)
      // alone, regardless of which thread drew the index.
      Rng rng(spec.seed ^ SplitMix64Finalize(hit));
      fire = rng.NextBernoulli(spec.probability);
      break;
    }
    case FailPointMode::kEveryNth:
      fire = (hit + 1) % spec.n == 0;
      break;
    case FailPointMode::kOneShot:
      fire = hit == spec.after;
      break;
  }
  if (fire) {
    point->fires.fetch_add(1, std::memory_order_relaxed);
  }
  return fire;
}

FailPointStats FailPointRegistry::GetStats(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(std::string(name));
  if (it == points_.end()) {
    return {};
  }
  return {it->second->hits.load(std::memory_order_relaxed),
          it->second->fires.load(std::memory_order_relaxed)};
}

}  // namespace spauth
