// Simple wall-clock timer used by benches and construction-time accounting.
#ifndef SPAUTH_UTIL_TIMER_H_
#define SPAUTH_UTIL_TIMER_H_

#include <chrono>

namespace spauth {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace spauth

#endif  // SPAUTH_UTIL_TIMER_H_
