// Hex encoding/decoding helpers (used for digest display and test vectors).
#ifndef SPAUTH_UTIL_HEX_H_
#define SPAUTH_UTIL_HEX_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace spauth {

/// Lowercase hex string of `data`.
std::string ToHex(std::span<const uint8_t> data);

/// Parses a hex string (even length, upper or lower case).
Result<std::vector<uint8_t>> FromHex(std::string_view hex);

}  // namespace spauth

#endif  // SPAUTH_UTIL_HEX_H_
