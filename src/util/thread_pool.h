// A small fixed-size worker pool for batch query serving.
//
// MethodEngine::AnswerBatch fans a query stream out over N workers, each
// holding its own SearchWorkspace so the per-thread scratch arrays stay hot
// across the whole stream. The pool is deliberately minimal: submit
// void() tasks, wait for quiescence, destroy. No futures, no task
// priorities — the batch layer owns result placement.
#ifndef SPAUTH_UTIL_THREAD_POOL_H_
#define SPAUTH_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace spauth {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least one).
  explicit ThreadPool(size_t num_threads);
  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; runs on some worker. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished running.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// A sensible worker count for `jobs` independent jobs on this host.
  static size_t DefaultThreads(size_t jobs);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: task or shutdown
  std::condition_variable idle_cv_;   // signals Wait(): everything done
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // tasks popped but not yet finished
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace spauth

#endif  // SPAUTH_UTIL_THREAD_POOL_H_
