// Canonical binary encoding used everywhere a byte string is hashed, signed,
// or shipped to the client.
//
// All integers are little-endian fixed width; doubles are encoded as the
// little-endian bytes of their IEEE-754 bit pattern. There is exactly one
// encoding for every value, which is what makes digests well defined.
#ifndef SPAUTH_UTIL_BYTE_BUFFER_H_
#define SPAUTH_UTIL_BYTE_BUFFER_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace spauth {

/// Append-only binary encoder.
class ByteWriter {
 public:
  ByteWriter() = default;

  void WriteU8(uint8_t v) { bytes_.push_back(v); }
  void WriteU16(uint16_t v) { WriteLittleEndian(v); }
  void WriteU32(uint32_t v) { WriteLittleEndian(v); }
  void WriteU64(uint64_t v) { WriteLittleEndian(v); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }
  void WriteF64(double v) { WriteU64(std::bit_cast<uint64_t>(v)); }

  /// Raw bytes, no length prefix.
  void WriteBytes(std::span<const uint8_t> data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }
  void WriteBytes(const void* data, size_t size) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + size);
  }

  /// u32 length prefix followed by the bytes.
  void WriteLengthPrefixed(std::span<const uint8_t> data) {
    WriteU32(static_cast<uint32_t>(data.size()));
    WriteBytes(data);
  }
  void WriteString(std::string_view s) {
    WriteU32(static_cast<uint32_t>(s.size()));
    WriteBytes(s.data(), s.size());
  }

  /// Pre-sizes the underlying buffer (use with SerializedSize() to make
  /// proof assembly allocation-free).
  void Reserve(size_t size) { bytes_.reserve(size); }
  /// Drops the contents but keeps the capacity; lets one writer be reused
  /// as a scratch encoding buffer across many values.
  void Clear() { bytes_.clear(); }

  size_t size() const { return bytes_.size(); }
  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> TakeBytes() { return std::move(bytes_); }
  std::span<const uint8_t> view() const { return bytes_; }

 private:
  template <typename T>
  void WriteLittleEndian(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<uint8_t> bytes_;
};

/// Bounds-checked binary decoder over a borrowed buffer.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  Status ReadU8(uint8_t* out) { return ReadLittleEndian(out); }
  Status ReadU16(uint16_t* out) { return ReadLittleEndian(out); }
  Status ReadU32(uint32_t* out) { return ReadLittleEndian(out); }
  Status ReadU64(uint64_t* out) { return ReadLittleEndian(out); }

  Status ReadBool(bool* out) {
    uint8_t v = 0;
    SPAUTH_RETURN_IF_ERROR(ReadU8(&v));
    if (v > 1) {
      return Status::Malformed("bool byte out of range");
    }
    *out = (v == 1);
    return Status::Ok();
  }

  Status ReadF64(double* out) {
    uint64_t bits = 0;
    SPAUTH_RETURN_IF_ERROR(ReadU64(&bits));
    *out = std::bit_cast<double>(bits);
    return Status::Ok();
  }

  /// Reads exactly `size` raw bytes.
  Status ReadBytes(size_t size, std::vector<uint8_t>* out) {
    if (remaining() < size) {
      return Status::OutOfRange("buffer underflow reading bytes");
    }
    out->assign(data_.begin() + pos_, data_.begin() + pos_ + size);
    pos_ += size;
    return Status::Ok();
  }
  Status ReadBytesInto(void* out, size_t size) {
    if (remaining() < size) {
      return Status::OutOfRange("buffer underflow reading bytes");
    }
    std::memcpy(out, data_.data() + pos_, size);
    pos_ += size;
    return Status::Ok();
  }

  /// Reads a u32 length prefix followed by that many bytes.
  Status ReadLengthPrefixed(std::vector<uint8_t>* out) {
    uint32_t len = 0;
    SPAUTH_RETURN_IF_ERROR(ReadU32(&len));
    return ReadBytes(len, out);
  }
  Status ReadString(std::string* out) {
    uint32_t len = 0;
    SPAUTH_RETURN_IF_ERROR(ReadU32(&len));
    if (remaining() < len) {
      return Status::OutOfRange("buffer underflow reading string");
    }
    out->assign(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return Status::Ok();
  }

  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  Status ReadLittleEndian(T* out) {
    if (remaining() < sizeof(T)) {
      return Status::OutOfRange("buffer underflow reading integer");
    }
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    *out = v;
    return Status::Ok();
  }

  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace spauth

#endif  // SPAUTH_UTIL_BYTE_BUFFER_H_
