// Shared integer mixing for shard placement.
#ifndef SPAUTH_UTIL_HASH_MIX_H_
#define SPAUTH_UTIL_HASH_MIX_H_

#include <cstdint>

namespace spauth {

/// splitmix64 finalizer: a cheap bijective mixer that spreads correlated
/// keys (dense node and query ids) uniformly over 64 bits. Both the proof
/// cache's shard pick and the serving-shard router use this one mixer so
/// their distributions cannot drift apart.
inline uint64_t SplitMix64Finalize(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace spauth

#endif  // SPAUTH_UTIL_HASH_MIX_H_
