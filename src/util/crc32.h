// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) plus the shared
// length-prefixed record framing used by every durable file format in
// spauth (the update WAL and the snapshot store).
//
// A framed record on disk is
//
//   u32 payload_length   (little endian)
//   u32 crc32(payload)   (little endian)
//   payload_length bytes of payload
//
// so a reader can detect both truncation (fewer bytes than the header
// promises — a torn write at the tail of a WAL) and bit rot (CRC
// mismatch) before trusting a single payload byte. The CRC guards
// *integrity*, not *authenticity*: the snapshot store layers the signed
// Merkle certificate check (verify-on-load) on top of this framing.
#ifndef SPAUTH_UTIL_CRC32_H_
#define SPAUTH_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/byte_buffer.h"
#include "util/status.h"

namespace spauth {

/// CRC32 of `bytes` (IEEE, init/final xor 0xFFFFFFFF). Table-driven, no
/// hardware dependency; throughput is irrelevant next to the RSA signing
/// the durable paths already pay.
uint32_t Crc32(std::span<const uint8_t> bytes);

/// Incremental form: feed `bytes` into a running checksum. Start from
/// `kCrc32Init`, finish with `Crc32Finish`.
inline constexpr uint32_t kCrc32Init = 0xFFFFFFFFu;
uint32_t Crc32Update(uint32_t state, std::span<const uint8_t> bytes);
inline uint32_t Crc32Finish(uint32_t state) { return state ^ 0xFFFFFFFFu; }

/// Appends one framed record (length, crc, payload) to `out`.
void AppendFramedRecord(std::span<const uint8_t> payload,
                        std::vector<uint8_t>* out);

/// Bytes a framed record occupies for a payload of `payload_size` bytes.
inline constexpr size_t FramedRecordSize(size_t payload_size) {
  return 2 * sizeof(uint32_t) + payload_size;
}

/// Reads the next framed record starting at `reader`'s position into
/// `payload`. Distinguishes the three reader outcomes durability code
/// cares about:
///   - OK: a whole, checksum-clean record was consumed;
///   - kCorruption: the frame is torn (header or payload truncated) or
///     the payload fails its CRC — the reader position is unspecified and
///     the stream must not be read further;
///   - kOutOfRange: the reader was exactly at end-of-stream (a clean end,
///     not an error — callers use this to terminate replay loops).
Status ReadFramedRecord(ByteReader* reader, std::vector<uint8_t>* payload);

}  // namespace spauth

#endif  // SPAUTH_UTIL_CRC32_H_
