#include "util/status.h"

namespace spauth {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kVerificationFailed:
      return "VERIFICATION_FAILED";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kMalformed:
      return "MALFORMED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kCorruption:
      return "CORRUPTION";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace spauth
