#include "util/crc32.h"

#include <array>

namespace spauth {
namespace {

// Lookup table for the reflected IEEE polynomial, built once at load.
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t state, std::span<const uint8_t> bytes) {
  const auto& table = Table();
  for (uint8_t b : bytes) {
    state = table[(state ^ b) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

uint32_t Crc32(std::span<const uint8_t> bytes) {
  return Crc32Finish(Crc32Update(kCrc32Init, bytes));
}

void AppendFramedRecord(std::span<const uint8_t> payload,
                        std::vector<uint8_t>* out) {
  ByteWriter header;
  header.WriteU32(static_cast<uint32_t>(payload.size()));
  header.WriteU32(Crc32(payload));
  out->insert(out->end(), header.bytes().begin(), header.bytes().end());
  out->insert(out->end(), payload.begin(), payload.end());
}

Status ReadFramedRecord(ByteReader* reader, std::vector<uint8_t>* payload) {
  if (reader->AtEnd()) {
    return Status::OutOfRange("end of stream");
  }
  uint32_t length = 0;
  uint32_t crc = 0;
  if (!reader->ReadU32(&length).ok() || !reader->ReadU32(&crc).ok()) {
    return Status::Corruption("torn record header");
  }
  if (reader->remaining() < length) {
    return Status::Corruption("torn record payload: header promises " +
                              std::to_string(length) + " bytes, " +
                              std::to_string(reader->remaining()) + " left");
  }
  SPAUTH_RETURN_IF_ERROR(reader->ReadBytes(length, payload));
  if (Crc32(*payload) != crc) {
    return Status::Corruption("record checksum mismatch");
  }
  return Status::Ok();
}

}  // namespace spauth
