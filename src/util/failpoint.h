// Named, seeded, deterministic fail points — the injection side of the
// fault-tolerance plane.
//
// A fail point is a compiled-in hook at a hot seam (RSA signing, Merkle
// leaf update, proof-bundle assembly, proof-cache insert, snapshot
// publish, per-shard answer dispatch, and every durability seam of the
// WAL + snapshot store) that tests, benches and chaos campaigns arm at
// runtime to make that seam fail on a deterministic, seed-replayable
// schedule.
//
// Complete fail-point registry (name | seam | failure surfaced as):
//
//   certificate/sign     MakeCertificate, before RSA signing   kUnavailable
//   ads/update_tuple     NetworkAds::UpdateTuple (Merkle path
//                        rebuild)                              kUnavailable
//   engine/answer        MethodEngine serving, before cache
//                        lookup                                kUnavailable
//   engine/assemble      MethodEngine serving, after a cache
//                        miss, before proof-bundle assembly    kUnavailable
//   engine/cache_insert  proof-cache insert (skip-only: the
//                        answer is still served, the
//                        memoization is dropped)               (silent skip)
//   engine/publish       DIJ rotation, after signing, before
//                        the snapshot publish in
//                        EngineStateSlot                       kUnavailable
//   shard/answer         ShardedEngine per-attempt dispatch
//                        (arg = engine index, so one replica
//                        can be failed in isolation)           kUnavailable
//   wal/append           Wal::Append, before the record bytes
//                        reach the log (crash before append)   kUnavailable
//   wal/fsync            Wal::Append, after the bytes are
//                        written, before the flush barrier —
//                        models a crash that tears the tail
//                        record (the record is truncated
//                        mid-payload, replay must stop there)  kUnavailable
//   snapshot/write       SnapshotStore::Write, before the
//                        atomic rename publishes the file (a
//                        torn temp file is left behind and
//                        must be ignored by Load)              kUnavailable
//   snapshot/load        SnapshotStore recovery read path,
//                        before decoding (models an
//                        unreadable snapshot file; recovery
//                        falls back to the previous one)       kUnavailable
//   replica/resync       ShardedEngine owner-side heal, before
//                        installing a sibling's state into a
//                        lagging replica (arg = engine index)  kUnavailable
//   wal/reset            Wal::Reset, before the truncate — the
//                        crash between a snapshot publish and
//                        the checkpoint truncate (a stale full
//                        log survives next to the snapshot
//                        that absorbed it)                     kUnavailable
//   net/accept           SpauthServer accept path: the fresh
//                        connection is closed instead of
//                        registered                            (conn refused)
//   net/read             SpauthServer per-connection read:
//                        caps one read at a single byte (arg =
//                        connection id) — a short-read storm    (short read)
//   net/write            SpauthServer per-connection write:
//                        writes a torn prefix of the queued
//                        bytes, then kills the connection
//                        (arg = connection id)                 (torn write)
//   net/conn_kill        SpauthServer event loop, on conn
//                        readiness: closes the connection
//                        outright (arg = connection id)        (conn killed)
//
// Determinism: an armed point decides fire/pass from (seed, hit index)
// alone — probability mode hashes the hit index through a seeded
// SplitMix64-derived Rng stream, every-Nth and one-shot modes use the hit
// counter directly. Hit indices are handed out with an atomic fetch_add,
// so for a given number of hits the SET of fired indices is exactly
// reproducible from the seed even under concurrency (which thread draws
// which index is scheduling-dependent; how many fire is not). No
// wall-clock, no std::random_device anywhere.
//
// Cost when compiled in but not armed: one relaxed atomic load and a
// predicted-not-taken branch per seam. Building with
// -DSPAUTH_FAILPOINTS=OFF compiles every hook to nothing.
#ifndef SPAUTH_UTIL_FAILPOINT_H_
#define SPAUTH_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/status.h"

namespace spauth {

/// Whether the fail-point hooks were compiled into this build.
constexpr bool FailPointsCompiledIn() {
#if defined(SPAUTH_FAILPOINTS_OFF)
  return false;
#else
  return true;
#endif
}

/// How an armed fail point decides to fire.
enum class FailPointMode {
  /// Fires each hit independently with probability `probability`, decided
  /// by a seeded hash of the hit index (replayable from the seed).
  kProbability,
  /// Fires on every `n`-th hit (hit indices n-1, 2n-1, ...).
  kEveryNth,
  /// Fires exactly once, on hit index `after` (0 = the next hit).
  kOneShot,
};

/// An armed fail point's schedule.
struct FailPointSpec {
  FailPointMode mode = FailPointMode::kProbability;
  double probability = 1.0;  // kProbability
  uint64_t n = 1;            // kEveryNth
  uint64_t after = 0;        // kOneShot: fire on this hit index
  uint64_t seed = 1;         // kProbability decision stream
  /// When set, the point only fires for hits whose argument equals this
  /// value (e.g. one engine index out of a replica group). Hits with a
  /// different argument pass through without consuming a hit index.
  bool has_match_arg = false;
  uint64_t match_arg = 0;
};

/// Cumulative per-point counters (what the chaos assertions reconcile).
struct FailPointStats {
  uint64_t hits = 0;   // evaluations that matched the arg filter
  uint64_t fires = 0;  // hits that failed
};

/// Process-wide registry of named fail points. Arm/disarm are test- and
/// bench-side; ShouldFail sits on the seams. All methods are thread-safe.
class FailPointRegistry {
 public:
  static FailPointRegistry& Global();

  /// Arms (or re-arms, resetting counters) `name` with `spec`.
  void Arm(std::string name, FailPointSpec spec);
  /// Convenience wrappers for the three modes.
  void ArmProbability(std::string name, double probability, uint64_t seed);
  void ArmEveryNth(std::string name, uint64_t n);
  void ArmOneShot(std::string name, uint64_t after = 0);

  void Disarm(std::string_view name);
  void DisarmAll();

  /// True when the seam named `name` should fail this hit. `arg` feeds the
  /// spec's match filter (pass 0 from seams without a natural argument).
  bool ShouldFail(std::string_view name, uint64_t arg = 0);

  /// Counters for an armed point ({0, 0} for unknown names; counters reset
  /// when a point is re-armed).
  FailPointStats GetStats(std::string_view name) const;

  /// The single relaxed load the disarmed fast path performs.
  bool AnyArmed() const {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

 private:
  struct Point {
    FailPointSpec spec;
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> fires{0};
  };

  FailPointRegistry() = default;

  std::atomic<uint64_t> armed_count_{0};
  mutable std::mutex mu_;
  // shared_ptr so a ShouldFail in flight keeps its point alive across a
  // concurrent Disarm from another thread.
  std::unordered_map<std::string, std::shared_ptr<Point>> points_;
};

/// RAII helper: arms a fail point for the current scope, disarms on exit
/// (tests stay hermetic even when an assertion fails mid-scope).
class ScopedFailPoint {
 public:
  ScopedFailPoint(std::string name, FailPointSpec spec) : name_(name) {
    FailPointRegistry::Global().Arm(std::move(name), spec);
  }
  ~ScopedFailPoint() { FailPointRegistry::Global().Disarm(name_); }
  ScopedFailPoint(const ScopedFailPoint&) = delete;
  ScopedFailPoint& operator=(const ScopedFailPoint&) = delete;

 private:
  std::string name_;
};

}  // namespace spauth

#if defined(SPAUTH_FAILPOINTS_OFF)

#define SPAUTH_FAILPOINT_TRIGGERED(name) false
#define SPAUTH_FAILPOINT_TRIGGERED_ARG(name, arg) false

#else

/// Boolean expression: true when the armed point fires this hit. Use
/// directly for seams with non-Status failure handling (e.g. skipping a
/// cache insert).
#define SPAUTH_FAILPOINT_TRIGGERED(name) \
  SPAUTH_FAILPOINT_TRIGGERED_ARG(name, 0)

#define SPAUTH_FAILPOINT_TRIGGERED_ARG(name, arg)          \
  (::spauth::FailPointRegistry::Global().AnyArmed() &&     \
   ::spauth::FailPointRegistry::Global().ShouldFail((name), (arg)))

#endif  // SPAUTH_FAILPOINTS_OFF

/// Statement: returns Status::Unavailable out of the enclosing function
/// (works for Status- and Result<T>-returning functions) when the point
/// fires. Compiles to nothing with -DSPAUTH_FAILPOINTS=OFF.
#define SPAUTH_FAILPOINT_RETURN(name)                                \
  do {                                                               \
    if (SPAUTH_FAILPOINT_TRIGGERED(name)) {                          \
      return ::spauth::Status::Unavailable(                          \
          std::string("fail point fired: ") + (name));               \
    }                                                                \
  } while (false)

#define SPAUTH_FAILPOINT_RETURN_ARG(name, arg)                       \
  do {                                                               \
    if (SPAUTH_FAILPOINT_TRIGGERED_ARG(name, arg)) {                 \
      return ::spauth::Status::Unavailable(                          \
          std::string("fail point fired: ") + (name));               \
    }                                                                \
  } while (false)

#endif  // SPAUTH_UTIL_FAILPOINT_H_
