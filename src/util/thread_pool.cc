#include "util/thread_pool.h"

#include <algorithm>

namespace spauth {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

size_t ThreadPool::DefaultThreads(size_t jobs) {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max<size_t>(1, std::min<size_t>(jobs, hw == 0 ? 1 : hw));
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutdown with a drained queue
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) {
        idle_cv_.notify_all();
      }
    }
  }
}

}  // namespace spauth
