// Sharded LRU cache for assembled proof bundles (or any value addressed by
// a 64-bit canonical key).
//
// The serving fast path memoizes whole wire messages: a repeated query is
// answered with the exact bytes assembled the first time, skipping the
// graph search, proof generation and bundle encoding entirely. Entries are
// held through shared_ptr so a hit never copies under the shard lock and a
// concurrent Clear() cannot invalidate a bundle a reader still holds.
// Sharding by key hash keeps the per-lookup critical section short when a
// worker pool serves one cache.
//
// The cache is deliberately value-agnostic (templated) so util/ stays below
// core/ in the layering; MethodEngine instantiates it with ProofBundle.
#ifndef SPAUTH_UTIL_PROOF_CACHE_H_
#define SPAUTH_UTIL_PROOF_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "util/hash_mix.h"

namespace spauth {

/// Aggregated hit/miss/byte counters across all shards.
struct ProofCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  /// Entries dropped by Clear() (owner-side invalidation). Together with
  /// evictions this makes the counters conserve:
  /// insertions == evictions + cleared + entries at any quiescent point.
  uint64_t cleared = 0;
  /// Total payload bytes served from cache hits.
  uint64_t hit_bytes = 0;
  /// Entries currently resident.
  size_t entries = 0;

  double hit_rate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

template <typename Value>
class ProofCache {
 public:
  struct Options {
    size_t capacity = 4096;  // total entries across shards
    size_t shards = 8;
  };

  explicit ProofCache(Options options) {
    const size_t shards = options.shards == 0 ? 1 : options.shards;
    per_shard_capacity_ =
        options.capacity <= shards ? 1 : options.capacity / shards;
    shards_.reserve(shards);
    for (size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  /// The cached value for `key`, or nullptr. A hit refreshes recency.
  std::shared_ptr<const Value> Lookup(uint64_t key) {
    Shard& shard = ShardOf(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      ++shard.misses;
      return nullptr;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    ++shard.hits;
    shard.hit_bytes += it->second->bytes;
    return it->second->value;
  }

  /// Caches `value` under `key` (replacing any previous entry), evicting
  /// the least-recently-used entry when the shard is full. `bytes` is the
  /// payload size attributed to hit-byte accounting.
  void Insert(uint64_t key, std::shared_ptr<const Value> value,
              size_t bytes) {
    Shard& shard = ShardOf(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->value = std::move(value);
      it->second->bytes = bytes;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    shard.lru.push_front(Entry{key, std::move(value), bytes});
    shard.index[key] = shard.lru.begin();
    ++shard.insertions;
    while (shard.lru.size() > per_shard_capacity_) {
      shard.index.erase(shard.lru.back().key);
      shard.lru.pop_back();
      ++shard.evictions;
    }
  }

  /// Drops every entry (counters survive). Used when the ADS root changes:
  /// every cached bundle certifies a stale root.
  void Clear() {
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->cleared += shard->lru.size();
      shard->lru.clear();
      shard->index.clear();
    }
  }

  ProofCacheStats GetStats() const {
    ProofCacheStats stats;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      stats.hits += shard->hits;
      stats.misses += shard->misses;
      stats.insertions += shard->insertions;
      stats.evictions += shard->evictions;
      stats.cleared += shard->cleared;
      stats.hit_bytes += shard->hit_bytes;
      stats.entries += shard->lru.size();
    }
    return stats;
  }

 private:
  struct Entry {
    uint64_t key;
    std::shared_ptr<const Value> value;
    size_t bytes;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<uint64_t, typename std::list<Entry>::iterator> index;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t cleared = 0;
    uint64_t hit_bytes = 0;
  };

  Shard& ShardOf(uint64_t key) const {
    return *shards_[SplitMix64Finalize(key) % shards_.size()];
  }

  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace spauth

#endif  // SPAUTH_UTIL_PROOF_CACHE_H_
