// Copy-on-write chunk helpers — the one place the persistent structures'
// aliasing invariant lives.
//
// MerkleTree levels, Graph adjacency blocks and NetworkAds tuple chunks
// are all shared_ptr "chunks" hanging off a per-version pointer spine:
// copying the owner shares every chunk, and a writer must never mutate a
// chunk another version can still read. EnsureUniqueChunk enforces that:
// use_count() == 1 means the caller is the chunk's only owner (nobody
// else holds a reference to copy from, so the count cannot concurrently
// grow) and in-place mutation is safe; any other count duplicates the
// chunk first. The duplicated payload size — computed by the caller's
// cost function, in whatever accounting unit its structure reports — is
// accumulated into `copied_bytes` so rotations can surface their real
// clone traffic (MethodEngine::rotation_clone_bytes).
#ifndef SPAUTH_UTIL_COW_H_
#define SPAUTH_UTIL_COW_H_

#include <algorithm>
#include <cstddef>
#include <memory>
#include <span>
#include <utility>

namespace spauth {

/// Makes `chunk` safe to mutate, copy-on-write. `byte_cost(chunk_ref)` is
/// invoked only when a copy happens and only if `copied_bytes` is
/// non-null. Returns the (now uniquely owned) chunk.
template <typename Chunk, typename ByteCost>
Chunk& EnsureUniqueChunk(std::shared_ptr<Chunk>& chunk, size_t* copied_bytes,
                         ByteCost&& byte_cost) {
  if (chunk.use_count() != 1) {
    chunk = std::make_shared<Chunk>(*chunk);
    if (copied_bytes != nullptr) {
      *copied_bytes += byte_cost(*chunk);
    }
  }
  return *chunk;
}

/// Positions at which two chunk spines hold the *same* chunk object — the
/// structural-sharing count the differential tests assert. Spines of
/// different lengths compare over the common prefix.
template <typename Chunk>
size_t SharedSpinePositions(std::span<const std::shared_ptr<Chunk>> a,
                            std::span<const std::shared_ptr<Chunk>> b) {
  const size_t n = std::min(a.size(), b.size());
  size_t shared = 0;
  for (size_t i = 0; i < n; ++i) {
    if (a[i] == b[i]) {
      ++shared;
    }
  }
  return shared;
}

}  // namespace spauth

#endif  // SPAUTH_UTIL_COW_H_
