// Deterministic pseudo-random number generator (xoshiro256** seeded via
// SplitMix64). All randomness in spauth flows through this type so that
// graphs, workloads, keys, benches and tests are reproducible bit-for-bit
// from a 64-bit seed.
#ifndef SPAUTH_UTIL_RNG_H_
#define SPAUTH_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace spauth {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform over all 64-bit values.
  uint64_t NextU64();

  /// Uniform over [0, bound). bound must be > 0. Uses rejection sampling, so
  /// the distribution is exactly uniform.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform over [0, 2^32).
  uint32_t NextU32() { return static_cast<uint32_t>(NextU64() >> 32); }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDoubleIn(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// true with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Fills `out` with random bytes.
  void FillBytes(uint8_t* out, size_t size);

 private:
  uint64_t state_[4];
};

}  // namespace spauth

#endif  // SPAUTH_UTIL_RNG_H_
