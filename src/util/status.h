// Lightweight Status / Result error-handling kernel (absl/arrow style).
//
// Every fallible operation in spauth returns a Status (or Result<T>); the
// library never throws. VerifyOutcome (core/verify_outcome.h) layers
// client-side accept/reject semantics on top of this.
#ifndef SPAUTH_UTIL_STATUS_H_
#define SPAUTH_UTIL_STATUS_H_

#include <cassert>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace spauth {

/// Canonical error codes used across the library.
enum class StatusCode {
  kOk = 0,
  /// Caller passed an argument that violates the API contract.
  kInvalidArgument,
  /// A requested entity (node, edge, key) does not exist.
  kNotFound,
  /// The operation requires state that has not been established.
  kFailedPrecondition,
  /// A cryptographic or structural verification check failed.
  kVerificationFailed,
  /// Decoding ran past the end of a buffer or a value was out of range.
  kOutOfRange,
  /// Wire bytes could not be parsed into the expected structure.
  kMalformed,
  /// An internal invariant was violated (library bug).
  kInternal,
  /// The serving backend is (transiently) unable to answer: a crashed or
  /// fault-injected shard, an open circuit breaker, a replica mid-restart.
  /// Retryable: the same request may succeed on another replica or later.
  kUnavailable,
  /// The caller's per-request deadline budget ran out before an answer was
  /// produced. Retryable with a fresh budget.
  kDeadlineExceeded,
  /// Durable state is unrecoverably lost or failed authenticated
  /// verification on load (snapshot root does not match its signed
  /// certificate, WAL tail unreplayable). NOT retryable: the bytes on disk
  /// will not improve on a second read, and retrying corruption into the
  /// failover path would turn one bad replica into a retry storm.
  kDataLoss,
  /// A durable record failed its integrity check (CRC mismatch, torn or
  /// truncated frame). NOT retryable for the same reason as kDataLoss;
  /// recovery code may *skip* a corrupt WAL tail record, never retry it.
  kCorruption,
};

/// Returns a human-readable name for `code` (e.g. "INVALID_ARGUMENT").
std::string_view StatusCodeToString(StatusCode code);

/// True for the transient codes a failover layer may retry (on another
/// replica, after backoff): kUnavailable and kDeadlineExceeded. Everything
/// else is either a caller bug, a soundness failure, or a permanent state
/// the same request would hit again — in particular kDataLoss/kCorruption
/// must never be retried into a failover storm.
constexpr bool IsRetryable(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kDeadlineExceeded;
}

/// A success-or-error value. Cheap to copy on the OK path.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status VerificationFailed(std::string msg) {
    return Status(StatusCode::kVerificationFailed, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Malformed(std::string msg) {
    return Status(StatusCode::kMalformed, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Never holds an OK status
/// without a value.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(payload_).ok() &&
           "Result must not be constructed from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Requires ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(payload_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(payload_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(payload_));
  }

  /// OK if a value is held, the stored error otherwise.
  Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(payload_);
  }

 private:
  std::variant<Status, T> payload_;
};

}  // namespace spauth

/// Propagates a non-OK Status from `expr` out of the enclosing function.
#define SPAUTH_RETURN_IF_ERROR(expr)          \
  do {                                        \
    ::spauth::Status status_macro_ = (expr);  \
    if (!status_macro_.ok()) {                \
      return status_macro_;                   \
    }                                         \
  } while (false)

#define SPAUTH_MACRO_CONCAT_INNER(a, b) a##b
#define SPAUTH_MACRO_CONCAT(a, b) SPAUTH_MACRO_CONCAT_INNER(a, b)

/// Evaluates `rexpr` (a Result<T>), propagating errors; otherwise binds the
/// value to `lhs`.
#define SPAUTH_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  SPAUTH_ASSIGN_OR_RETURN_IMPL(SPAUTH_MACRO_CONCAT(result_macro_, __LINE__), \
                               lhs, rexpr)

#define SPAUTH_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) {                                    \
    return tmp.status();                              \
  }                                                   \
  lhs = std::move(tmp).value()

#endif  // SPAUTH_UTIL_STATUS_H_
