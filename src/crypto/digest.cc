#include "crypto/digest.h"

#include "util/hex.h"

namespace spauth {

namespace {

inline uint32_t Rotl32(uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }
inline uint32_t Rotr32(uint32_t x, int k) { return (x >> k) | (x << (32 - k)); }

// SHA-256 round constants (FIPS 180-4 §4.2.2).
constexpr uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

}  // namespace

std::string_view HashAlgorithmName(HashAlgorithm alg) {
  return alg == HashAlgorithm::kSha1 ? "sha1" : "sha256";
}

Result<HashAlgorithm> ParseHashAlgorithm(uint8_t wire) {
  if (wire == static_cast<uint8_t>(HashAlgorithm::kSha1)) {
    return HashAlgorithm::kSha1;
  }
  if (wire == static_cast<uint8_t>(HashAlgorithm::kSha256)) {
    return HashAlgorithm::kSha256;
  }
  return Status::Malformed("unknown hash algorithm id");
}

std::string Digest::ToHex() const { return spauth::ToHex(view()); }

Hasher::Hasher(HashAlgorithm alg)
    : alg_(alg), total_bytes_(0), block_fill_(0), finished_(false) {
  if (alg_ == HashAlgorithm::kSha1) {
    h_[0] = 0x67452301;
    h_[1] = 0xefcdab89;
    h_[2] = 0x98badcfe;
    h_[3] = 0x10325476;
    h_[4] = 0xc3d2e1f0;
    h_[5] = h_[6] = h_[7] = 0;
  } else {
    h_[0] = 0x6a09e667;
    h_[1] = 0xbb67ae85;
    h_[2] = 0x3c6ef372;
    h_[3] = 0xa54ff53a;
    h_[4] = 0x510e527f;
    h_[5] = 0x9b05688c;
    h_[6] = 0x1f83d9ab;
    h_[7] = 0x5be0cd19;
  }
}

void Hasher::ProcessBlock(const uint8_t* block) {
  uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<uint32_t>(block[4 * i]) << 24) |
           (static_cast<uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<uint32_t>(block[4 * i + 3]);
  }

  if (alg_ == HashAlgorithm::kSha1) {
    for (int i = 16; i < 80; ++i) {
      w[i] = Rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
    }
    uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
    for (int i = 0; i < 80; ++i) {
      uint32_t f, k;
      if (i < 20) {
        f = (b & c) | ((~b) & d);
        k = 0x5a827999;
      } else if (i < 40) {
        f = b ^ c ^ d;
        k = 0x6ed9eba1;
      } else if (i < 60) {
        f = (b & c) | (b & d) | (c & d);
        k = 0x8f1bbcdc;
      } else {
        f = b ^ c ^ d;
        k = 0xca62c1d6;
      }
      uint32_t tmp = Rotl32(a, 5) + f + e + k + w[i];
      e = d;
      d = c;
      c = Rotl32(b, 30);
      b = a;
      a = tmp;
    }
    h_[0] += a;
    h_[1] += b;
    h_[2] += c;
    h_[3] += d;
    h_[4] += e;
  } else {
    for (int i = 16; i < 64; ++i) {
      uint32_t s0 = Rotr32(w[i - 15], 7) ^ Rotr32(w[i - 15], 18) ^ (w[i - 15] >> 3);
      uint32_t s1 = Rotr32(w[i - 2], 17) ^ Rotr32(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3];
    uint32_t e = h_[4], f = h_[5], g = h_[6], h = h_[7];
    for (int i = 0; i < 64; ++i) {
      uint32_t s1 = Rotr32(e, 6) ^ Rotr32(e, 11) ^ Rotr32(e, 25);
      uint32_t ch = (e & f) ^ ((~e) & g);
      uint32_t t1 = h + s1 + ch + kSha256K[i] + w[i];
      uint32_t s0 = Rotr32(a, 2) ^ Rotr32(a, 13) ^ Rotr32(a, 22);
      uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      uint32_t t2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }
    h_[0] += a;
    h_[1] += b;
    h_[2] += c;
    h_[3] += d;
    h_[4] += e;
    h_[5] += f;
    h_[6] += g;
    h_[7] += h;
  }
}

Hasher& Hasher::Update(std::span<const uint8_t> data) {
  if (data.empty()) {
    return *this;  // an empty span may carry a null data() (memcpy UB)
  }
  total_bytes_ += data.size();
  size_t offset = 0;
  if (block_fill_ > 0) {
    size_t take = std::min(data.size(), sizeof(block_) - block_fill_);
    std::memcpy(block_ + block_fill_, data.data(), take);
    block_fill_ += take;
    offset = take;
    if (block_fill_ == sizeof(block_)) {
      ProcessBlock(block_);
      block_fill_ = 0;
    }
  }
  while (offset + sizeof(block_) <= data.size()) {
    ProcessBlock(data.data() + offset);
    offset += sizeof(block_);
  }
  if (offset < data.size()) {
    std::memcpy(block_, data.data() + offset, data.size() - offset);
    block_fill_ = data.size() - offset;
  }
  return *this;
}

void Hasher::FinishBlocks(uint64_t bit_length) {
  // Merkle-Damgard strengthening: 0x80, zero pad to 56 mod 64, 64-bit
  // big-endian length — assembled directly in the block buffer instead of
  // feeding padding bytes back through Update one at a time.
  block_[block_fill_++] = 0x80;
  if (block_fill_ > 56) {
    std::memset(block_ + block_fill_, 0, sizeof(block_) - block_fill_);
    ProcessBlock(block_);
    block_fill_ = 0;
  }
  std::memset(block_ + block_fill_, 0, 56 - block_fill_);
  for (int i = 0; i < 8; ++i) {
    block_[56 + i] = static_cast<uint8_t>(bit_length >> (8 * (7 - i)));
  }
  ProcessBlock(block_);
  block_fill_ = 0;
}

Digest Hasher::ExtractDigest() const {
  Digest out;
  size_t words = alg_ == HashAlgorithm::kSha1 ? 5 : 8;
  out.set_size(words * 4);
  for (size_t i = 0; i < words; ++i) {
    out.mutable_data()[4 * i] = static_cast<uint8_t>(h_[i] >> 24);
    out.mutable_data()[4 * i + 1] = static_cast<uint8_t>(h_[i] >> 16);
    out.mutable_data()[4 * i + 2] = static_cast<uint8_t>(h_[i] >> 8);
    out.mutable_data()[4 * i + 3] = static_cast<uint8_t>(h_[i]);
  }
  return out;
}

Digest Hasher::Finish() {
  finished_ = true;
  FinishBlocks(total_bytes_ * 8);
  return ExtractDigest();
}

Digest Hasher::Hash(HashAlgorithm alg, std::span<const uint8_t> data) {
  Hasher h(alg);
  if (data.size() < 56) {
    // Single-block fast path: message, 0x80 and the length all fit in one
    // block, so skip the Update() buffering entirely. This is the common
    // case for Merkle leaf/internal-node hashing (tens of bytes).
    if (!data.empty()) {
      std::memcpy(h.block_, data.data(), data.size());
    }
    h.block_fill_ = data.size();
    h.FinishBlocks(static_cast<uint64_t>(data.size()) * 8);
    return h.ExtractDigest();
  }
  h.Update(data);
  return h.Finish();
}

}  // namespace spauth
