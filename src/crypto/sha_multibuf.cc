#include "crypto/sha_multibuf.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <vector>

namespace spauth {

namespace {

// The scalar fallback used for single messages, lane stragglers, and the
// whole entry point when the SIMD path is compiled out.
inline void HashScalar(HashAlgorithm alg, const uint8_t* data, size_t size,
                       Digest* out) {
  *out = Hasher::Hash(alg, {data, size});
}

}  // namespace

#if !defined(SPAUTH_SHA_MULTIBUF_OFF) && defined(__GNUC__)
#define SPAUTH_SHA_MULTIBUF_SIMD 1
#endif

#if SPAUTH_SHA_MULTIBUF_SIMD

namespace {

constexpr size_t kLanes = kShaMultiBufLanes;
static_assert(kLanes == 8, "lane transforms below are written for 8 lanes");

// One 32-bit word per lane. The compiler lowers the elementwise arithmetic
// to two 128-bit SSE ops on baseline x86-64 and one 256-bit op under AVX2;
// either way all eight independent hash states advance per instruction
// stream instead of serializing on one state's dependency chain.
typedef uint32_t Vu32 __attribute__((vector_size(4 * kLanes)));

inline Vu32 Rotl(Vu32 x, int k) { return (x << k) | (x >> (32 - k)); }
inline Vu32 Rotr(Vu32 x, int k) { return (x >> k) | (x << (32 - k)); }
inline Vu32 Broadcast(uint32_t v) { return Vu32{v, v, v, v, v, v, v, v}; }

// Loads message word i of each lane's current block, transposed into one
// vector (big-endian, FIPS 180-4). The gather is scalar; the schedule and
// rounds that dominate the work are vectorized.
inline Vu32 LoadWord(const uint8_t* const ptrs[kLanes], int i) {
  Vu32 v{};
  for (size_t l = 0; l < kLanes; ++l) {
    const uint8_t* p = ptrs[l] + 4 * i;
    v[l] = (static_cast<uint32_t>(p[0]) << 24) |
           (static_cast<uint32_t>(p[1]) << 16) |
           (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
  }
  return v;
}

// SHA-1 compression over one 64-byte block per lane. Mirrors
// Hasher::ProcessBlock word for word, with every uint32_t widened to Vu32.
void Sha1Rounds(Vu32 h[5], const uint8_t* const ptrs[kLanes]) {
  Vu32 w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = LoadWord(ptrs, i);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = Rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }
  Vu32 a = h[0], b = h[1], c = h[2], d = h[3], e = h[4];
  for (int i = 0; i < 80; ++i) {
    Vu32 f;
    uint32_t k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5a827999;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdc;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6;
    }
    Vu32 tmp = Rotl(a, 5) + f + e + Broadcast(k) + w[i];
    e = d;
    d = c;
    c = Rotl(b, 30);
    b = a;
    a = tmp;
  }
  h[0] += a;
  h[1] += b;
  h[2] += c;
  h[3] += d;
  h[4] += e;
}

// SHA-256 round constants (FIPS 180-4 §4.2.2) — same table as digest.cc.
constexpr uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

void Sha256Rounds(Vu32 h[8], const uint8_t* const ptrs[kLanes]) {
  Vu32 w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = LoadWord(ptrs, i);
  }
  for (int i = 16; i < 64; ++i) {
    Vu32 s0 = Rotr(w[i - 15], 7) ^ Rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    Vu32 s1 = Rotr(w[i - 2], 17) ^ Rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  Vu32 a = h[0], b = h[1], c = h[2], d = h[3];
  Vu32 e = h[4], f = h[5], g = h[6], hh = h[7];
  for (int i = 0; i < 64; ++i) {
    Vu32 s1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
    Vu32 ch = (e & f) ^ (~e & g);
    Vu32 t1 = hh + s1 + ch + Broadcast(kSha256K[i]) + w[i];
    Vu32 s0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
    Vu32 maj = (a & b) ^ (a & c) ^ (b & c);
    Vu32 t2 = s0 + maj;
    hh = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  h[0] += a;
  h[1] += b;
  h[2] += c;
  h[3] += d;
  h[4] += e;
  h[5] += f;
  h[6] += g;
  h[7] += hh;
}

// Hashes n (1..kLanes) messages of EQUAL length `size` in one lane batch.
// Idle lanes mirror lane 0 (same length, so the lockstep block walk stays
// trivially aligned) and their results are discarded.
void HashLanesEqualSize(HashAlgorithm alg, size_t n,
                        const uint8_t* const* data, size_t size, Digest* out,
                        const uint32_t* out_index) {
  const uint8_t* lane_data[kLanes];
  for (size_t l = 0; l < kLanes; ++l) {
    lane_data[l] = data[l < n ? l : 0];
  }

  const size_t full_blocks = size / 64;
  const size_t rem = size % 64;
  // Merkle-Damgard tail: 0x80, zero pad, 64-bit big-endian bit length —
  // one tail block when the padding fits, two otherwise (rem >= 56).
  const size_t tail_blocks = rem >= 56 ? 2 : 1;
  const uint64_t bit_length = static_cast<uint64_t>(size) * 8;
  uint8_t tails[kLanes][128];
  for (size_t l = 0; l < kLanes; ++l) {
    std::memset(tails[l], 0, tail_blocks * 64);
    if (rem > 0) {
      std::memcpy(tails[l], lane_data[l] + full_blocks * 64, rem);
    }
    tails[l][rem] = 0x80;
    for (int i = 0; i < 8; ++i) {
      tails[l][tail_blocks * 64 - 8 + i] =
          static_cast<uint8_t>(bit_length >> (8 * (7 - i)));
    }
  }

  Vu32 h[8];
  const size_t words = alg == HashAlgorithm::kSha1 ? 5 : 8;
  if (alg == HashAlgorithm::kSha1) {
    h[0] = Broadcast(0x67452301);
    h[1] = Broadcast(0xefcdab89);
    h[2] = Broadcast(0x98badcfe);
    h[3] = Broadcast(0x10325476);
    h[4] = Broadcast(0xc3d2e1f0);
  } else {
    h[0] = Broadcast(0x6a09e667);
    h[1] = Broadcast(0xbb67ae85);
    h[2] = Broadcast(0x3c6ef372);
    h[3] = Broadcast(0xa54ff53a);
    h[4] = Broadcast(0x510e527f);
    h[5] = Broadcast(0x9b05688c);
    h[6] = Broadcast(0x1f83d9ab);
    h[7] = Broadcast(0x5be0cd19);
  }

  const uint8_t* ptrs[kLanes];
  for (size_t b = 0; b < full_blocks; ++b) {
    for (size_t l = 0; l < kLanes; ++l) {
      ptrs[l] = lane_data[l] + b * 64;
    }
    alg == HashAlgorithm::kSha1 ? Sha1Rounds(h, ptrs) : Sha256Rounds(h, ptrs);
  }
  for (size_t tb = 0; tb < tail_blocks; ++tb) {
    for (size_t l = 0; l < kLanes; ++l) {
      ptrs[l] = tails[l] + tb * 64;
    }
    alg == HashAlgorithm::kSha1 ? Sha1Rounds(h, ptrs) : Sha256Rounds(h, ptrs);
  }

  for (size_t l = 0; l < n; ++l) {
    Digest* d = &out[out_index[l]];
    *d = Digest();
    d->set_size(words * 4);
    for (size_t i = 0; i < words; ++i) {
      const uint32_t word = h[i][l];
      d->mutable_data()[4 * i] = static_cast<uint8_t>(word >> 24);
      d->mutable_data()[4 * i + 1] = static_cast<uint8_t>(word >> 16);
      d->mutable_data()[4 * i + 2] = static_cast<uint8_t>(word >> 8);
      d->mutable_data()[4 * i + 3] = static_cast<uint8_t>(word);
    }
  }
}

}  // namespace

#endif  // SPAUTH_SHA_MULTIBUF_SIMD

bool ShaMultiBufEnabled() {
#if SPAUTH_SHA_MULTIBUF_SIMD
  return true;
#else
  return false;
#endif
}

void ShaHashMany(HashAlgorithm alg, size_t count, const uint8_t* const* data,
                 const size_t* sizes, Digest* out) {
#if SPAUTH_SHA_MULTIBUF_SIMD
  if (count >= 2) {
    // Group equal-length messages into lane batches. A stable sort of the
    // index array keeps runs deterministic; results land at out[i] by
    // original index, so the order of hashing is unobservable.
    std::vector<uint32_t> order(count);
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      return sizes[a] < sizes[b];
    });
    size_t run_begin = 0;
    while (run_begin < count) {
      size_t run_end = run_begin + 1;
      const size_t size = sizes[order[run_begin]];
      while (run_end < count && sizes[order[run_end]] == size) {
        ++run_end;
      }
      for (size_t chunk = run_begin; chunk < run_end;
           chunk += kShaMultiBufLanes) {
        const size_t n = std::min(kShaMultiBufLanes, run_end - chunk);
        if (n < 2) {
          // A lone straggler: one scalar hash beats a one-lane SIMD batch.
          const uint32_t i = order[chunk];
          HashScalar(alg, data[i], sizes[i], &out[i]);
          continue;
        }
        const uint8_t* lane_data[kShaMultiBufLanes];
        uint32_t lane_out[kShaMultiBufLanes];
        for (size_t l = 0; l < n; ++l) {
          lane_data[l] = data[order[chunk + l]];
          lane_out[l] = order[chunk + l];
        }
        HashLanesEqualSize(alg, n, lane_data, size, out, lane_out);
      }
      run_begin = run_end;
    }
    return;
  }
#endif
  for (size_t i = 0; i < count; ++i) {
    HashScalar(alg, data[i], sizes[i], &out[i]);
  }
}

void ShaHashMany(HashAlgorithm alg,
                 std::span<const std::span<const uint8_t>> msgs, Digest* out) {
  std::vector<const uint8_t*> data(msgs.size());
  std::vector<size_t> sizes(msgs.size());
  for (size_t i = 0; i < msgs.size(); ++i) {
    data[i] = msgs[i].data();
    sizes[i] = msgs[i].size();
  }
  ShaHashMany(alg, msgs.size(), data.data(), sizes.data(), out);
}

}  // namespace spauth
