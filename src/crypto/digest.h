// Message digests and the streaming hash interface.
//
// The paper uses SHA-1 (20-byte digests); spauth implements both SHA-1 and
// SHA-256 from scratch and defaults to SHA-1 so that integrity-proof byte
// counts are comparable with the paper's. Digest is a small value type that
// carries its algorithm's length (20 or 32 bytes).
#ifndef SPAUTH_CRYPTO_DIGEST_H_
#define SPAUTH_CRYPTO_DIGEST_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>

#include "util/status.h"

namespace spauth {

/// Hash functions available to the owner when building an ADS.
enum class HashAlgorithm : uint8_t {
  kSha1 = 1,    // 20-byte digests (paper default)
  kSha256 = 2,  // 32-byte digests
};

/// Digest length in bytes for `alg`.
constexpr size_t DigestSize(HashAlgorithm alg) {
  return alg == HashAlgorithm::kSha1 ? 20 : 32;
}

std::string_view HashAlgorithmName(HashAlgorithm alg);
Result<HashAlgorithm> ParseHashAlgorithm(uint8_t wire);

/// A fixed-capacity hash output. Only the first size() bytes are meaningful;
/// trailing bytes are zero so equality can compare the whole array.
class Digest {
 public:
  static constexpr size_t kMaxSize = 32;

  Digest() : size_(0) { bytes_.fill(0); }

  static Digest FromBytes(std::span<const uint8_t> data) {
    Digest d;
    d.size_ = data.size() <= kMaxSize ? data.size() : kMaxSize;
    std::memcpy(d.bytes_.data(), data.data(), d.size_);
    return d;
  }

  const uint8_t* data() const { return bytes_.data(); }
  uint8_t* mutable_data() { return bytes_.data(); }
  size_t size() const { return size_; }
  void set_size(size_t size) { size_ = size; }
  bool empty() const { return size_ == 0; }

  std::span<const uint8_t> view() const { return {bytes_.data(), size_}; }

  std::string ToHex() const;

  bool operator==(const Digest& other) const {
    return size_ == other.size_ && bytes_ == other.bytes_;
  }
  bool operator!=(const Digest& other) const { return !(*this == other); }

 private:
  std::array<uint8_t, kMaxSize> bytes_;
  size_t size_;
};

/// Streaming hasher; create, Update() any number of times, Finish() once.
class Hasher {
 public:
  explicit Hasher(HashAlgorithm alg);

  Hasher& Update(std::span<const uint8_t> data);
  Hasher& Update(const void* data, size_t size) {
    return Update({static_cast<const uint8_t*>(data), size});
  }

  /// Finalizes and returns the digest. The hasher must not be reused.
  Digest Finish();

  /// One-shot convenience.
  static Digest Hash(HashAlgorithm alg, std::span<const uint8_t> data);

 private:
  HashAlgorithm alg_;
  // Unified state block large enough for either algorithm.
  uint32_t h_[8];
  uint64_t total_bytes_;
  uint8_t block_[64];
  size_t block_fill_;
  bool finished_;

  void ProcessBlock(const uint8_t* block);
  /// Assembles the Merkle-Damgard padding for `bit_length` in block_
  /// (starting at block_fill_) and processes the final one or two blocks.
  void FinishBlocks(uint64_t bit_length);
  /// Serializes the chaining state into a Digest.
  Digest ExtractDigest() const;
};

}  // namespace spauth

#endif  // SPAUTH_CRYPTO_DIGEST_H_
