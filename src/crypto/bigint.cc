#include "crypto/bigint.h"

#include <algorithm>
#include <cassert>

namespace spauth {

namespace {

constexpr int kLimbBits = 32;

// Small primes for trial division before Miller-Rabin.
constexpr uint32_t kSmallPrimes[] = {
    3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,  47,  53,
    59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107, 109, 113, 127,
    131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
    211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283,
    293, 307, 311, 313, 317, 331, 337, 347, 349, 353, 359, 367, 373, 379, 383,
    389, 397, 401, 409, 419, 421, 431, 433, 439, 443, 449, 457, 461, 463, 467,
    479, 487, 491, 499, 503, 509, 521, 523, 541, 547, 557, 563, 569, 571, 577,
    587, 593, 599, 601, 607, 613, 617, 619, 631, 641, 643, 647, 653, 659, 661,
    673, 677, 683, 691, 701, 709, 719, 727, 733, 739, 743, 751, 757, 761, 769,
    773, 787, 797, 809, 811, 821, 823, 827, 829, 839, 853, 857, 859, 863, 877,
    881, 883, 887, 907, 911, 919, 929, 937, 941, 947, 953, 967, 971, 977, 983,
    991, 997};

}  // namespace

void BigInt::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) {
    limbs_.pop_back();
  }
}

BigInt BigInt::FromU64(uint64_t v) {
  BigInt out;
  if (v != 0) {
    out.limbs_.push_back(static_cast<uint32_t>(v));
    if (v >> 32) {
      out.limbs_.push_back(static_cast<uint32_t>(v >> 32));
    }
  }
  return out;
}

uint64_t BigInt::LowU64() const {
  uint64_t v = limbs_.empty() ? 0 : limbs_[0];
  if (limbs_.size() > 1) {
    v |= static_cast<uint64_t>(limbs_[1]) << 32;
  }
  return v;
}

BigInt BigInt::FromBytesBigEndian(std::span<const uint8_t> bytes) {
  BigInt out;
  out.limbs_.assign((bytes.size() + 3) / 4, 0);
  for (size_t i = 0; i < bytes.size(); ++i) {
    // bytes[i] is the (bytes.size()-1-i)-th least significant byte.
    size_t byte_index = bytes.size() - 1 - i;
    out.limbs_[byte_index / 4] |= static_cast<uint32_t>(bytes[i])
                                  << (8 * (byte_index % 4));
  }
  out.Normalize();
  return out;
}

std::vector<uint8_t> BigInt::ToBytesBigEndian() const {
  size_t bytes = (BitLength() + 7) / 8;
  if (bytes == 0) {
    bytes = 1;
  }
  auto result = ToBytesBigEndian(bytes);
  assert(result.ok());
  return std::move(result).value();
}

Result<std::vector<uint8_t>> BigInt::ToBytesBigEndian(size_t size) const {
  size_t needed = (BitLength() + 7) / 8;
  if (needed > size) {
    return Status::OutOfRange("BigInt does not fit in requested byte width");
  }
  std::vector<uint8_t> out(size, 0);
  for (size_t byte_index = 0; byte_index < needed; ++byte_index) {
    uint32_t limb = limbs_[byte_index / 4];
    out[size - 1 - byte_index] =
        static_cast<uint8_t>(limb >> (8 * (byte_index % 4)));
  }
  return out;
}

int BigInt::BitLength() const {
  if (limbs_.empty()) {
    return 0;
  }
  int bits = static_cast<int>(limbs_.size() - 1) * kLimbBits;
  uint32_t top = limbs_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::GetBit(int i) const {
  size_t limb = static_cast<size_t>(i) / kLimbBits;
  if (limb >= limbs_.size()) {
    return false;
  }
  return (limbs_[limb] >> (i % kLimbBits)) & 1;
}

int BigInt::Compare(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) {
      return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigInt BigInt::Add(const BigInt& a, const BigInt& b) {
  BigInt out;
  const size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t sum = carry;
    if (i < a.limbs_.size()) sum += a.limbs_[i];
    if (i < b.limbs_.size()) sum += b.limbs_[i];
    out.limbs_[i] = static_cast<uint32_t>(sum);
    carry = sum >> 32;
  }
  out.limbs_[n] = static_cast<uint32_t>(carry);
  out.Normalize();
  return out;
}

BigInt BigInt::Sub(const BigInt& a, const BigInt& b) {
  assert(Compare(a, b) >= 0 && "Sub requires a >= b");
  BigInt out;
  out.limbs_.resize(a.limbs_.size(), 0);
  int64_t borrow = 0;
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) diff -= b.limbs_[i];
    if (diff < 0) {
      diff += (int64_t{1} << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<uint32_t>(diff);
  }
  out.Normalize();
  return out;
}

BigInt BigInt::Mul(const BigInt& a, const BigInt& b) {
  if (a.IsZero() || b.IsZero()) {
    return BigInt();
  }
  BigInt out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    uint64_t carry = 0;
    uint64_t ai = a.limbs_[i];
    for (size_t j = 0; j < b.limbs_.size(); ++j) {
      uint64_t cur = out.limbs_[i + j] + ai * b.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    out.limbs_[i + b.limbs_.size()] += static_cast<uint32_t>(carry);
  }
  out.Normalize();
  return out;
}

Result<BigIntDivMod> BigInt::DivMod(const BigInt& a, const BigInt& b) {
  if (b.IsZero()) {
    return Status::InvalidArgument("division by zero");
  }
  if (Compare(a, b) < 0) {
    return BigIntDivMod{BigInt(), a};
  }
  if (b.limbs_.size() == 1) {
    // Short division by a single limb.
    BigInt q;
    q.limbs_.resize(a.limbs_.size());
    uint64_t rem = 0;
    uint64_t divisor = b.limbs_[0];
    for (size_t i = a.limbs_.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | a.limbs_[i];
      q.limbs_[i] = static_cast<uint32_t>(cur / divisor);
      rem = cur % divisor;
    }
    q.Normalize();
    return BigIntDivMod{std::move(q), FromU64(rem)};
  }

  // Knuth TAOCP vol. 2, Algorithm D, base 2^32.
  const int shift = kLimbBits - (b.BitLength() % kLimbBits == 0
                                     ? kLimbBits
                                     : b.BitLength() % kLimbBits);
  BigInt u = a.ShiftLeft(shift);  // normalized dividend
  BigInt v = b.ShiftLeft(shift);  // normalized divisor, top bit of top limb set
  const size_t n = v.limbs_.size();
  const size_t m = u.limbs_.size() >= n ? u.limbs_.size() - n : 0;
  u.limbs_.resize(a.limbs_.size() + 1 + (shift > 0 ? 1 : 0), 0);
  if (u.limbs_.size() < n + m + 1) {
    u.limbs_.resize(n + m + 1, 0);
  }

  BigInt q;
  q.limbs_.assign(m + 1, 0);
  const uint64_t v_top = v.limbs_[n - 1];
  const uint64_t v_second = n >= 2 ? v.limbs_[n - 2] : 0;

  for (size_t j = m + 1; j-- > 0;) {
    // Estimate q_hat = (u[j+n]*B + u[j+n-1]) / v[n-1].
    uint64_t numerator =
        (static_cast<uint64_t>(u.limbs_[j + n]) << 32) | u.limbs_[j + n - 1];
    uint64_t q_hat = numerator / v_top;
    uint64_t r_hat = numerator % v_top;
    if (q_hat > 0xffffffffULL) {
      q_hat = 0xffffffffULL;
      r_hat = numerator - q_hat * v_top;
    }
    while (r_hat <= 0xffffffffULL &&
           q_hat * v_second > ((r_hat << 32) | (j + n >= 2 ? u.limbs_[j + n - 2]
                                                           : 0))) {
      --q_hat;
      r_hat += v_top;
    }

    // Multiply-and-subtract: u[j..j+n] -= q_hat * v.
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      uint64_t product = q_hat * v.limbs_[i] + carry;
      carry = product >> 32;
      int64_t diff = static_cast<int64_t>(u.limbs_[j + i]) -
                     static_cast<int64_t>(product & 0xffffffffULL) - borrow;
      if (diff < 0) {
        diff += (int64_t{1} << 32);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u.limbs_[j + i] = static_cast<uint32_t>(diff);
    }
    int64_t top_diff = static_cast<int64_t>(u.limbs_[j + n]) -
                       static_cast<int64_t>(carry) - borrow;
    bool negative = top_diff < 0;
    u.limbs_[j + n] = static_cast<uint32_t>(top_diff);

    if (negative) {
      // q_hat was one too large (rare); add the divisor back.
      --q_hat;
      uint64_t add_carry = 0;
      for (size_t i = 0; i < n; ++i) {
        uint64_t sum = static_cast<uint64_t>(u.limbs_[j + i]) + v.limbs_[i] +
                       add_carry;
        u.limbs_[j + i] = static_cast<uint32_t>(sum);
        add_carry = sum >> 32;
      }
      u.limbs_[j + n] =
          static_cast<uint32_t>(u.limbs_[j + n] + add_carry);
    }
    q.limbs_[j] = static_cast<uint32_t>(q_hat);
  }

  q.Normalize();
  u.limbs_.resize(n);
  u.Normalize();
  BigInt r = u.ShiftRight(shift);
  return BigIntDivMod{std::move(q), std::move(r)};
}

Result<BigInt> BigInt::Mod(const BigInt& a, const BigInt& m) {
  SPAUTH_ASSIGN_OR_RETURN(BigIntDivMod dm, DivMod(a, m));
  return dm.remainder;
}

Result<BigInt> BigInt::ModMul(const BigInt& a, const BigInt& b,
                              const BigInt& m) {
  return Mod(Mul(a, b), m);
}

Result<BigInt> BigInt::ModPow(const BigInt& base, const BigInt& exp,
                              const BigInt& m) {
  if (m.IsZero()) {
    return Status::InvalidArgument("modulus must be non-zero");
  }
  if (m == FromU64(1)) {
    return BigInt();
  }
  SPAUTH_ASSIGN_OR_RETURN(BigInt acc, Mod(base, m));
  BigInt result = FromU64(1);
  const int bits = exp.BitLength();
  for (int i = 0; i < bits; ++i) {
    if (exp.GetBit(i)) {
      SPAUTH_ASSIGN_OR_RETURN(result, ModMul(result, acc, m));
    }
    if (i + 1 < bits) {
      SPAUTH_ASSIGN_OR_RETURN(acc, ModMul(acc, acc, m));
    }
  }
  return result;
}

BigInt BigInt::Gcd(BigInt a, BigInt b) {
  while (!b.IsZero()) {
    auto dm = DivMod(a, b);
    assert(dm.ok());
    a = std::move(b);
    b = std::move(dm.value().remainder);
  }
  return a;
}

Result<BigInt> BigInt::ModInverse(const BigInt& a, const BigInt& m) {
  // Extended Euclid, tracking coefficients as (sign, magnitude) pairs since
  // BigInt is unsigned.
  BigInt old_r = a, r = m;
  BigInt old_s = FromU64(1), s;
  bool old_s_neg = false, s_neg = false;
  while (!r.IsZero()) {
    SPAUTH_ASSIGN_OR_RETURN(BigIntDivMod dm, DivMod(old_r, r));
    BigInt q = dm.quotient;
    BigInt new_r = dm.remainder;
    old_r = std::move(r);
    r = std::move(new_r);

    // new_s = old_s - q * s
    BigInt qs = Mul(q, s);
    BigInt new_s;
    bool new_s_neg;
    if (old_s_neg == s_neg) {
      if (Compare(old_s, qs) >= 0) {
        new_s = Sub(old_s, qs);
        new_s_neg = old_s_neg;
      } else {
        new_s = Sub(qs, old_s);
        new_s_neg = !old_s_neg;
      }
    } else {
      new_s = Add(old_s, qs);
      new_s_neg = old_s_neg;
    }
    old_s = std::move(s);
    old_s_neg = s_neg;
    s = std::move(new_s);
    s_neg = new_s_neg;
  }
  if (!(old_r == FromU64(1))) {
    return Status::InvalidArgument("values are not coprime; no inverse");
  }
  if (old_s_neg) {
    SPAUTH_ASSIGN_OR_RETURN(BigInt reduced, Mod(old_s, m));
    if (reduced.IsZero()) {
      return reduced;
    }
    return Sub(m, reduced);
  }
  return Mod(old_s, m);
}

BigInt BigInt::ShiftLeft(int bits) const {
  if (IsZero() || bits == 0) {
    return *this;
  }
  const int limb_shift = bits / kLimbBits;
  const int bit_shift = bits % kLimbBits;
  BigInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t v = static_cast<uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<uint32_t>(v >> 32);
  }
  out.Normalize();
  return out;
}

BigInt BigInt::ShiftRight(int bits) const {
  if (IsZero() || bits == 0) {
    return *this;
  }
  const size_t limb_shift = static_cast<size_t>(bits) / kLimbBits;
  const int bit_shift = bits % kLimbBits;
  if (limb_shift >= limbs_.size()) {
    return BigInt();
  }
  BigInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift > 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<uint64_t>(limbs_[i + limb_shift + 1])
           << (kLimbBits - bit_shift);
    }
    out.limbs_[i] = static_cast<uint32_t>(v);
  }
  out.Normalize();
  return out;
}

BigInt BigInt::RandomBelow(const BigInt& bound, Rng* rng) {
  assert(!bound.IsZero());
  const int bits = bound.BitLength();
  const size_t bytes = (static_cast<size_t>(bits) + 7) / 8;
  std::vector<uint8_t> buf(bytes);
  for (;;) {
    rng->FillBytes(buf.data(), buf.size());
    // Mask excess high bits so the rejection rate stays below 50%.
    int excess = static_cast<int>(bytes * 8) - bits;
    buf[0] &= static_cast<uint8_t>(0xff >> excess);
    BigInt candidate = FromBytesBigEndian(buf);
    if (Compare(candidate, bound) < 0) {
      return candidate;
    }
  }
}

BigInt BigInt::RandomWithBits(int bits, Rng* rng) {
  assert(bits > 0);
  const size_t bytes = (static_cast<size_t>(bits) + 7) / 8;
  std::vector<uint8_t> buf(bytes);
  rng->FillBytes(buf.data(), buf.size());
  int excess = static_cast<int>(bytes * 8) - bits;
  buf[0] &= static_cast<uint8_t>(0xff >> excess);
  buf[0] |= static_cast<uint8_t>(0x80 >> excess);  // force the top bit
  return FromBytesBigEndian(buf);
}

bool BigInt::IsProbablePrime(const BigInt& n, int rounds, Rng* rng) {
  if (n.BitLength() <= 6) {
    uint64_t v = n.LowU64();
    if (v < 2) return false;
    for (uint64_t d = 2; d * d <= v; ++d) {
      if (v % d == 0) return false;
    }
    return true;
  }
  if (!n.IsOdd()) {
    return false;
  }
  for (uint32_t p : kSmallPrimes) {
    auto dm = DivMod(n, FromU64(p));
    assert(dm.ok());
    if (dm.value().remainder.IsZero()) {
      return n == FromU64(p);
    }
  }

  // Write n-1 = d * 2^s with d odd.
  const BigInt one = FromU64(1);
  const BigInt n_minus_1 = Sub(n, one);
  BigInt d = n_minus_1;
  int s = 0;
  while (!d.IsOdd()) {
    d = d.ShiftRight(1);
    ++s;
  }

  const BigInt two = FromU64(2);
  const BigInt n_minus_3 = Sub(n, FromU64(3));
  for (int round = 0; round < rounds; ++round) {
    BigInt a = Add(RandomBelow(n_minus_3, rng), two);  // a in [2, n-2]
    auto x_result = ModPow(a, d, n);
    assert(x_result.ok());
    BigInt x = std::move(x_result).value();
    if (x == one || x == n_minus_1) {
      continue;
    }
    bool composite = true;
    for (int i = 0; i < s - 1; ++i) {
      auto sq = ModMul(x, x, n);
      assert(sq.ok());
      x = std::move(sq).value();
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) {
      return false;
    }
  }
  return true;
}

BigInt BigInt::GeneratePrime(int bits, Rng* rng) {
  assert(bits >= 8);
  for (;;) {
    BigInt candidate = RandomWithBits(bits, rng);
    if (!candidate.IsOdd()) {
      candidate = Add(candidate, FromU64(1));
    }
    if (IsProbablePrime(candidate, /*rounds=*/24, rng)) {
      return candidate;
    }
  }
}

std::string BigInt::ToHexString() const {
  if (IsZero()) {
    return "0";
  }
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  for (size_t i = limbs_.size(); i-- > 0;) {
    for (int nibble = 7; nibble >= 0; --nibble) {
      out.push_back(kDigits[(limbs_[i] >> (4 * nibble)) & 0xf]);
    }
  }
  size_t first = out.find_first_not_of('0');
  return out.substr(first);
}

Result<BigInt> BigInt::FromHexString(std::string_view hex) {
  BigInt out;
  if (hex.empty()) {
    return Status::InvalidArgument("empty hex string");
  }
  for (char c : hex) {
    int v;
    if (c >= '0' && c <= '9') {
      v = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      v = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      v = c - 'A' + 10;
    } else {
      return Status::InvalidArgument("invalid hex digit");
    }
    out = Add(out.ShiftLeft(4), FromU64(static_cast<uint64_t>(v)));
  }
  return out;
}

}  // namespace spauth
