#include "crypto/rsa.h"

#include <algorithm>
#include <atomic>

namespace spauth {

namespace {

constexpr uint64_t kPublicExponent = 65537;

// Builds the EMSA-PKCS1-v1_5-style encoded message block:
//   0x00 0x01 FF .. FF 0x00 <alg-id byte> <digest bytes>
// exactly `size` bytes long.
Result<std::vector<uint8_t>> EncodeMessage(const Digest& digest, size_t size) {
  const size_t overhead = 3 + 1;  // leading bytes, separator, alg id
  if (size < digest.size() + overhead + 8) {
    return Status::InvalidArgument("modulus too small for digest encoding");
  }
  std::vector<uint8_t> em(size, 0xff);
  em[0] = 0x00;
  em[1] = 0x01;
  const size_t digest_offset = size - digest.size();
  em[digest_offset - 2] = 0x00;
  em[digest_offset - 1] =
      digest.size() == 20 ? static_cast<uint8_t>(HashAlgorithm::kSha1)
                          : static_cast<uint8_t>(HashAlgorithm::kSha256);
  std::copy(digest.view().begin(), digest.view().end(),
            em.begin() + static_cast<ptrdiff_t>(digest_offset));
  return em;
}

}  // namespace

void RsaPublicKey::Serialize(ByteWriter* out) const {
  out->WriteLengthPrefixed(modulus.ToBytesBigEndian());
  out->WriteLengthPrefixed(public_exponent.ToBytesBigEndian());
}

Result<RsaPublicKey> RsaPublicKey::Deserialize(ByteReader* in) {
  std::vector<uint8_t> n_bytes, e_bytes;
  SPAUTH_RETURN_IF_ERROR(in->ReadLengthPrefixed(&n_bytes));
  SPAUTH_RETURN_IF_ERROR(in->ReadLengthPrefixed(&e_bytes));
  RsaPublicKey key;
  key.modulus = BigInt::FromBytesBigEndian(n_bytes);
  key.public_exponent = BigInt::FromBytesBigEndian(e_bytes);
  if (key.modulus.IsZero() || key.public_exponent.IsZero()) {
    return Status::Malformed("RSA public key components must be non-zero");
  }
  return key;
}

Result<RsaKeyPair> RsaKeyPair::Generate(int modulus_bits, Rng* rng) {
  if (modulus_bits < 512) {
    return Status::InvalidArgument("modulus must be at least 512 bits");
  }
  const BigInt e = BigInt::FromU64(kPublicExponent);
  const BigInt one = BigInt::FromU64(1);
  for (;;) {
    BigInt p = BigInt::GeneratePrime(modulus_bits / 2, rng);
    BigInt q = BigInt::GeneratePrime(modulus_bits - modulus_bits / 2, rng);
    if (p == q) {
      continue;
    }
    BigInt n = BigInt::Mul(p, q);
    if (n.BitLength() != modulus_bits) {
      continue;
    }
    BigInt phi = BigInt::Mul(BigInt::Sub(p, one), BigInt::Sub(q, one));
    if (!(BigInt::Gcd(e, phi) == one)) {
      continue;
    }
    auto d = BigInt::ModInverse(e, phi);
    if (!d.ok()) {
      continue;
    }
    RsaPublicKey pub{std::move(n), e};
    return RsaKeyPair(std::move(pub), std::move(d).value());
  }
}

namespace {

// Relaxed is enough: the counters are read only after the operations whose
// counts they assert have completed (test/bench joins provide the ordering).
std::atomic<uint64_t> g_sign_ops{0};
std::atomic<uint64_t> g_verify_ops{0};

}  // namespace

uint64_t RsaSignOps() { return g_sign_ops.load(std::memory_order_relaxed); }
uint64_t RsaVerifyOps() {
  return g_verify_ops.load(std::memory_order_relaxed);
}

Result<std::vector<uint8_t>> RsaKeyPair::Sign(const Digest& digest) const {
  g_sign_ops.fetch_add(1, std::memory_order_relaxed);
  const size_t k = public_key_.SignatureSize();
  SPAUTH_ASSIGN_OR_RETURN(std::vector<uint8_t> em, EncodeMessage(digest, k));
  BigInt m = BigInt::FromBytesBigEndian(em);
  SPAUTH_ASSIGN_OR_RETURN(
      BigInt s, BigInt::ModPow(m, private_exponent_, public_key_.modulus));
  return s.ToBytesBigEndian(k);
}

bool RsaVerify(const RsaPublicKey& key, const Digest& digest,
               std::span<const uint8_t> signature) {
  g_verify_ops.fetch_add(1, std::memory_order_relaxed);
  const size_t k = key.SignatureSize();
  if (signature.size() != k) {
    return false;
  }
  BigInt s = BigInt::FromBytesBigEndian(signature);
  if (!(s < key.modulus)) {
    return false;
  }
  auto m = BigInt::ModPow(s, key.public_exponent, key.modulus);
  if (!m.ok()) {
    return false;
  }
  auto em = EncodeMessage(digest, k);
  if (!em.ok()) {
    return false;
  }
  auto recovered = m.value().ToBytesBigEndian(k);
  if (!recovered.ok()) {
    return false;
  }
  return recovered.value() == em.value();
}

}  // namespace spauth
