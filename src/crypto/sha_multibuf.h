// Multi-buffer SHA: hashes many independent messages at once by running
// 8 SHA-1/SHA-256 states in SIMD lanes (GCC vector extensions, so the
// compiler lowers the lane arithmetic to SSE2/AVX2 without any intrinsics
// or -march requirements). The digests are bit-identical to Hasher::Hash —
// the SIMD path only changes WHO advances the compression function, never
// what it computes — which the differential test sweep pins down.
//
// This is the throughput answer for the hash-heavy owner paths: Merkle
// level rebuilds hash thousands of same-shaped internal nodes per level,
// leaf (re)hashing feeds runs of similar-size payloads, and the forest
// certificate hashes one small tree per fleet rotation. All of them funnel
// through ShaHashMany, which internally groups equal-length messages into
// full lanes and falls back to the scalar Hasher for stragglers.
//
// Build gate: the SIMD path compiles in when SPAUTH_SHA_MULTIBUF=ON (the
// CMake default). With -DSPAUTH_SHA_MULTIBUF=OFF every entry point keeps
// the same signature and semantics but loops the scalar Hasher — CI builds
// both legs and asserts identical end-to-end answer digests.
#ifndef SPAUTH_CRYPTO_SHA_MULTIBUF_H_
#define SPAUTH_CRYPTO_SHA_MULTIBUF_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "crypto/digest.h"

namespace spauth {

/// SIMD lane width of the multi-buffer compression function. Partial
/// batches still run as one dispatch (idle lanes mirror lane 0), so any
/// equal-length group of >= 2 messages is worth batching.
inline constexpr size_t kShaMultiBufLanes = 8;

/// True when the library was built with the SIMD multi-buffer path
/// (SPAUTH_SHA_MULTIBUF=ON and a GNU-compatible compiler). False means
/// ShaHashMany is a scalar loop — same digests, no speedup.
bool ShaMultiBufEnabled();

/// Hashes `count` independent messages: out[i] == Hasher::Hash(alg,
/// {data[i], sizes[i]}) for every i, byte-identical. Messages of equal
/// length are batched into SIMD lanes; unequal lengths are grouped
/// internally, so callers just hand over whatever they have.
void ShaHashMany(HashAlgorithm alg, size_t count, const uint8_t* const* data,
                 const size_t* sizes, Digest* out);

/// Span-of-spans convenience for call sites that already hold views.
/// `out` must have room for msgs.size() digests.
void ShaHashMany(HashAlgorithm alg, std::span<const std::span<const uint8_t>> msgs,
                 Digest* out);

}  // namespace spauth

#endif  // SPAUTH_CRYPTO_SHA_MULTIBUF_H_
