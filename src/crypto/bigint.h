// Arbitrary-precision unsigned integer arithmetic, sized for RSA moduli
// (tested up to 4096 bits). Implemented from scratch: schoolbook
// multiplication, Knuth Algorithm D division, square-and-multiply modular
// exponentiation, extended Euclid inverse and Miller-Rabin primality.
//
// Representation: little-endian vector of 32-bit limbs, normalized so the
// most significant limb is non-zero (zero is the empty vector).
#ifndef SPAUTH_CRYPTO_BIGINT_H_
#define SPAUTH_CRYPTO_BIGINT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace spauth {

class BigInt;

/// Quotient/remainder pair returned by BigInt::DivMod.
struct BigIntDivMod;

class BigInt {
 public:
  /// Zero.
  BigInt() = default;

  static BigInt FromU64(uint64_t v);

  /// Interprets `bytes` as a big-endian unsigned integer.
  static BigInt FromBytesBigEndian(std::span<const uint8_t> bytes);

  /// Big-endian bytes, left-padded with zeros to exactly `size` bytes.
  /// Returns an error if the value does not fit.
  Result<std::vector<uint8_t>> ToBytesBigEndian(size_t size) const;

  /// Minimal big-endian byte representation ("0" encodes as one zero byte).
  std::vector<uint8_t> ToBytesBigEndian() const;

  /// Uniformly random integer in [0, bound). bound must be > 0.
  static BigInt RandomBelow(const BigInt& bound, Rng* rng);

  /// Random integer with exactly `bits` bits (top bit set).
  static BigInt RandomWithBits(int bits, Rng* rng);

  bool IsZero() const { return limbs_.empty(); }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }

  /// Number of significant bits (0 for zero).
  int BitLength() const;
  bool GetBit(int i) const;

  /// Three-way comparison: -1, 0, +1.
  static int Compare(const BigInt& a, const BigInt& b);
  bool operator==(const BigInt& other) const {
    return Compare(*this, other) == 0;
  }
  bool operator<(const BigInt& other) const {
    return Compare(*this, other) < 0;
  }
  bool operator<=(const BigInt& other) const {
    return Compare(*this, other) <= 0;
  }

  static BigInt Add(const BigInt& a, const BigInt& b);
  /// Requires a >= b.
  static BigInt Sub(const BigInt& a, const BigInt& b);
  static BigInt Mul(const BigInt& a, const BigInt& b);

  /// Knuth Algorithm D. Requires divisor != 0.
  static Result<BigIntDivMod> DivMod(const BigInt& a, const BigInt& b);
  static Result<BigInt> Mod(const BigInt& a, const BigInt& m);

  /// (a * b) mod m.
  static Result<BigInt> ModMul(const BigInt& a, const BigInt& b,
                               const BigInt& m);
  /// base^exp mod m (square and multiply). Requires m != 0.
  static Result<BigInt> ModPow(const BigInt& base, const BigInt& exp,
                               const BigInt& m);
  /// Multiplicative inverse of a mod m, if gcd(a, m) == 1.
  static Result<BigInt> ModInverse(const BigInt& a, const BigInt& m);

  static BigInt Gcd(BigInt a, BigInt b);

  BigInt ShiftLeft(int bits) const;
  BigInt ShiftRight(int bits) const;

  /// Miller-Rabin probabilistic primality test with `rounds` random bases.
  static bool IsProbablePrime(const BigInt& n, int rounds, Rng* rng);

  /// Generates a random probable prime with exactly `bits` bits.
  static BigInt GeneratePrime(int bits, Rng* rng);

  /// Lowercase hexadecimal ("0" for zero).
  std::string ToHexString() const;
  static Result<BigInt> FromHexString(std::string_view hex);

  uint64_t LowU64() const;

  const std::vector<uint32_t>& limbs() const { return limbs_; }

 private:
  void Normalize();

  std::vector<uint32_t> limbs_;
};

struct BigIntDivMod {
  BigInt quotient;
  BigInt remainder;
};

}  // namespace spauth

#endif  // SPAUTH_CRYPTO_BIGINT_H_
