// RSA signatures over Merkle roots (the data owner's signing primitive).
//
// Key generation, signing and verification are implemented from scratch on
// top of BigInt. Signing follows the EMSA-PKCS1-v1_5 shape: the digest is
// wrapped in a 0x00 0x01 FF..FF 0x00 <alg-id> <digest> block the size of the
// modulus, then exponentiated with the private key. This mirrors the paper's
// use of RSA [10] to sign the ADS root.
#ifndef SPAUTH_CRYPTO_RSA_H_
#define SPAUTH_CRYPTO_RSA_H_

#include <cstdint>
#include <vector>

#include "crypto/bigint.h"
#include "crypto/digest.h"
#include "util/byte_buffer.h"
#include "util/rng.h"
#include "util/status.h"

namespace spauth {

/// Public half of an RSA key pair; distributed to clients out of band.
struct RsaPublicKey {
  BigInt modulus;          // n = p*q
  BigInt public_exponent;  // e (65537)

  /// Signature length in bytes (the modulus width).
  size_t SignatureSize() const {
    return (static_cast<size_t>(modulus.BitLength()) + 7) / 8;
  }

  void Serialize(ByteWriter* out) const;
  static Result<RsaPublicKey> Deserialize(ByteReader* in);
};

/// Full key pair held by the data owner.
class RsaKeyPair {
 public:
  /// Generates a fresh key pair with a modulus of `modulus_bits` bits.
  /// 1024 matches the paper's era; tests use smaller keys for speed.
  static Result<RsaKeyPair> Generate(int modulus_bits, Rng* rng);

  const RsaPublicKey& public_key() const { return public_key_; }

  /// Signs a digest. Returns the signature as modulus-width bytes.
  Result<std::vector<uint8_t>> Sign(const Digest& digest) const;

 private:
  RsaKeyPair(RsaPublicKey pub, BigInt private_exponent)
      : public_key_(std::move(pub)),
        private_exponent_(std::move(private_exponent)) {}

  RsaPublicKey public_key_;
  BigInt private_exponent_;  // d
};

/// Verifies `signature` over `digest` under `key`. Returns true iff valid.
bool RsaVerify(const RsaPublicKey& key, const Digest& digest,
               std::span<const uint8_t> signature);

/// Process-wide monotone operation counters (relaxed atomics). These exist
/// so tests and bench JSON can assert the amortization claims directly —
/// "a fleet rotation signs exactly once", "a client verifies one signature
/// per fleet epoch" — instead of inferring them from timings.
uint64_t RsaSignOps();
uint64_t RsaVerifyOps();

}  // namespace spauth

#endif  // SPAUTH_CRYPTO_RSA_H_
