#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <utility>

#include "util/failpoint.h"

namespace spauth {
namespace {

constexpr uint64_t kListenId = 0;
constexpr uint64_t kWakeId = 1;

/// One queued write: either a small owned buffer (frame headers, preludes,
/// error answers, stats) or the shared proof bundle whose cache-resident
/// bytes are transmitted in place.
struct OutChunk {
  std::vector<uint8_t> bytes;
  std::shared_ptr<const ProofBundle> bundle;
  size_t offset = 0;

  std::span<const uint8_t> data() const {
    return bundle ? std::span<const uint8_t>(bundle->bytes)
                  : std::span<const uint8_t>(bytes);
  }
};

}  // namespace

struct SpauthServer::Conn {
  int fd = -1;
  uint64_t id = 0;
  FrameDecoder decoder;
  std::deque<OutChunk> write_q;
  size_t write_q_bytes = 0;
  bool read_paused = false;
  bool batch_inflight = false;
  std::vector<QueryMsg> pending;
  // The hello's declared protocol version (defaults to v1 so a client
  // that queries before the handshake still gets frames it can parse).
  // Forest sections are emitted only on v2+ connections.
  uint32_t protocol_version = kMinProtocolVersion;
  // The last fleet epoch whose forest certificate went down this
  // connection (handshake or inline); the first answer of a newer epoch
  // re-sends the certificate so long-lived clients re-anchor in-band.
  uint32_t forest_epoch_sent = 0;

  explicit Conn(size_t max_payload) : decoder(max_payload) {}
};

struct SpauthServer::Completion {
  struct Reply {
    uint64_t request_id = 0;
    uint32_t shard = 0;
    std::shared_ptr<const ProofBundle> bundle;  // null on error
    Status error;
  };
  uint64_t conn_id = 0;
  std::vector<Reply> replies;
  // The fleet's forest at batch-answer time (null outside forest mode):
  // the paths attached to these replies must come from the same epoch the
  // worker saw, not whatever the loop sees at enqueue time.
  std::shared_ptr<const FleetCertificate> fleet;
};

SpauthServer::SpauthServer(const ShardedEngine* engine,
                           RsaPublicKey owner_key, ServerOptions options)
    : engine_(engine),
      owner_key_(std::move(owner_key)),
      options_(std::move(options)) {
  if (options_.worker_threads == 0) {
    options_.worker_threads = 1;
  }
  if (options_.write_low_watermark >= options_.write_high_watermark) {
    options_.write_low_watermark = options_.write_high_watermark / 2;
  }
}

SpauthServer::~SpauthServer() { Stop(); }

Status SpauthServer::Start() {
  if (started_) {
    return Status::FailedPrecondition("server already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    return Status::Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("unparseable host: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, options_.listen_backlog) < 0) {
    Status s = Status::Unavailable(std::string("bind/listen: ") +
                                   std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    Status s = Status::Unavailable(std::string("epoll/eventfd: ") +
                                   std::strerror(errno));
    Stop();
    return s;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kWakeId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  pool_ = std::make_unique<ThreadPool>(options_.worker_threads);
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  started_ = true;
  loop_ = std::thread(&SpauthServer::EventLoop, this);
  return Status::Ok();
}

void SpauthServer::Stop() {
  if (started_) {
    stop_.store(true, std::memory_order_release);
    WakeLoop();
    loop_.join();
    started_ = false;
  }
  // Join workers before tearing down connections: an in-flight batch may
  // still reference the engine and push completions (which are simply
  // never delivered).
  pool_.reset();
  for (auto& [id, conn] : conns_) {
    ::close(conn->fd);
  }
  conns_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void SpauthServer::WakeLoop() {
  if (wake_fd_ >= 0) {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

void SpauthServer::EventLoop() {
  epoll_event events[64];
  while (!stop_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(epoll_fd_, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t id = events[i].data.u64;
      if (id == kListenId) {
        AcceptNewConnections();
        continue;
      }
      if (id == kWakeId) {
        uint64_t drained = 0;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        DrainCompletions();
        continue;
      }
      auto it = conns_.find(id);
      if (it == conns_.end()) {
        continue;  // closed earlier in this same wait batch
      }
      Conn* conn = it->second.get();
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConn(id, &counters_.conns_closed);
        continue;
      }
      if (events[i].events & EPOLLOUT) {
        if (!FlushWrites(conn)) {
          continue;  // connection closed mid-flush
        }
        ApplyBackpressure(conn);
        UpdateInterest(conn);  // drop EPOLLOUT once the queue drains
      }
      if (events[i].events & EPOLLIN) {
        HandleReadable(conn);
      }
    }
  }
}

void SpauthServer::AcceptNewConnections() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      return;  // EAGAIN or transient accept error: wait for the next event
    }
    if (SPAUTH_FAILPOINT_TRIGGERED("net/accept")) {
      ::close(fd);
      counters_.conns_refused.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Conn>(options_.max_frame_payload);
    conn->fd = fd;
    conn->id = id;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(id, std::move(conn));
    counters_.conns_accepted.fetch_add(1, std::memory_order_relaxed);
  }
}

void SpauthServer::HandleReadable(Conn* conn) {
  if (SPAUTH_FAILPOINT_TRIGGERED_ARG("net/conn_kill", conn->id)) {
    CloseConn(conn->id, &counters_.conns_killed);
    return;
  }
  std::vector<uint8_t> buf(options_.read_chunk_bytes);
  // Bounded passes per readiness event: level-triggered epoll re-arms, so
  // one stubborn connection cannot starve the loop.
  for (int pass = 0; pass < 8; ++pass) {
    size_t want = buf.size();
    if (SPAUTH_FAILPOINT_TRIGGERED_ARG("net/read", conn->id)) {
      want = 1;  // short-read storm: the decoder must reassemble
    }
    ssize_t n = ::read(conn->fd, buf.data(), want);
    if (n > 0) {
      counters_.bytes_read.fetch_add(static_cast<uint64_t>(n),
                                     std::memory_order_relaxed);
      conn->decoder.Feed(
          std::span<const uint8_t>(buf.data(), static_cast<size_t>(n)));
      if (!DrainFrames(conn)) {
        return;  // closed: malformed stream
      }
      if (static_cast<size_t>(n) < want) {
        break;
      }
      continue;
    }
    if (n == 0) {
      CloseConn(conn->id, &counters_.conns_closed);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    CloseConn(conn->id, &counters_.conns_closed);
    return;
  }
  MaybeDispatch(conn);
  if (!FlushWrites(conn)) {
    return;
  }
  ApplyBackpressure(conn);
  UpdateInterest(conn);
}

bool SpauthServer::DrainFrames(Conn* conn) {
  WireFrame frame;
  for (;;) {
    auto next = conn->decoder.Next(&frame);
    if (!next.ok()) {
      counters_.frames_malformed.fetch_add(1, std::memory_order_relaxed);
      CloseConn(conn->id, &counters_.conns_closed);
      return false;
    }
    if (!next.value()) {
      return true;
    }
    counters_.frames_received.fetch_add(1, std::memory_order_relaxed);
    switch (frame.type) {
      case MsgType::kHello: {
        HelloMsg hello;
        if (!ParseHello(frame.payload, &hello).ok() ||
            hello.protocol_version < kMinProtocolVersion ||
            hello.protocol_version > kProtocolVersion) {
          counters_.frames_malformed.fetch_add(1, std::memory_order_relaxed);
          CloseConn(conn->id, &counters_.conns_closed);
          return false;
        }
        // Negotiate down to what the client declared: every later frame
        // on this connection is gated on it, so a v1 client never sees a
        // v2 trailing section.
        conn->protocol_version = hello.protocol_version;
        const ServerInfoMsg info = MakeServerInfo(conn->protocol_version);
        if (info.forest_present) {
          conn->forest_epoch_sent = info.forest.params.fleet_epoch;
          counters_.forest_certs_sent.fetch_add(1, std::memory_order_relaxed);
        }
        EnqueueOwned(conn, EncodeServerInfoFrame(info));
        break;
      }
      case MsgType::kQuery: {
        QueryMsg query;
        if (!ParseQuery(frame.payload, &query).ok()) {
          counters_.frames_malformed.fetch_add(1, std::memory_order_relaxed);
          CloseConn(conn->id, &counters_.conns_closed);
          return false;
        }
        counters_.queries_received.fetch_add(1, std::memory_order_relaxed);
        conn->pending.push_back(query);
        break;
      }
      case MsgType::kStatsRequest:
        EnqueueOwned(conn, EncodeStatsFrame(SnapshotWireStats()));
        break;
      default:
        // Server-to-client types from a client are a protocol violation.
        counters_.frames_malformed.fetch_add(1, std::memory_order_relaxed);
        CloseConn(conn->id, &counters_.conns_closed);
        return false;
    }
  }
}

void SpauthServer::MaybeDispatch(Conn* conn) {
  if (conn->batch_inflight || conn->pending.empty()) {
    return;
  }
  conn->batch_inflight = true;
  counters_.batches_dispatched.fetch_add(1, std::memory_order_relaxed);
  const uint64_t conn_id = conn->id;
  std::vector<QueryMsg> batch = std::move(conn->pending);
  conn->pending.clear();
  pool_->Submit([this, conn_id, batch = std::move(batch)]() {
    std::vector<Query> queries;
    queries.reserve(batch.size());
    for (const QueryMsg& m : batch) {
      queries.push_back(m.query);
    }
    auto results = engine_->AnswerBatch(queries, options_.batch_threads);
    Completion completion;
    completion.conn_id = conn_id;
    completion.fleet = engine_->forest();
    completion.replies.reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      Completion::Reply reply;
      reply.request_id = batch[i].request_id;
      reply.shard = static_cast<uint32_t>(engine_->RouteOf(queries[i]));
      if (results[i].ok()) {
        reply.bundle = std::move(results[i]).value();
      } else {
        reply.error = results[i].status();
      }
      completion.replies.push_back(std::move(reply));
    }
    {
      std::lock_guard<std::mutex> lock(completions_mu_);
      completions_.push_back(std::move(completion));
    }
    WakeLoop();
  });
}

void SpauthServer::DrainCompletions() {
  std::vector<Completion> done;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    done.swap(completions_);
  }
  for (Completion& completion : done) {
    auto it = conns_.find(completion.conn_id);
    if (it == conns_.end()) {
      continue;  // connection died mid-batch; bundles release here
    }
    Conn* conn = it->second.get();
    conn->batch_inflight = false;
    for (Completion::Reply& reply : completion.replies) {
      if (reply.bundle) {
        // Forest answers ride as THREE chunks: owned prelude, the shared
        // proof bundle (zero-copy, exactly as before), then an owned tail
        // holding the per-answer path bytes — the proof is never staged
        // into an owned buffer to have a tail appended, so
        // proof_bytes_copied stays 0 in forest mode too.
        const FleetCertificate* fleet = completion.fleet.get();
        const bool attach_path =
            conn->protocol_version >= 2 && fleet != nullptr &&
            reply.shard < fleet->encoded_paths.size();
        if (attach_path) {
          const uint32_t epoch = fleet->certificate.params.fleet_epoch;
          std::span<const uint8_t> inline_cert;
          if (epoch != conn->forest_epoch_sent) {
            inline_cert = fleet->encoded_certificate;
          }
          std::vector<uint8_t> tail = EncodeAnswerForestTail(
              fleet->encoded_paths[reply.shard], inline_cert);
          EnqueueOwned(conn, EncodeAnswerFramePrelude(
                                 reply.request_id, reply.shard,
                                 reply.bundle->bytes.size(), tail.size()));
          EnqueueBundle(conn, std::move(reply.bundle));
          EnqueueOwned(conn, std::move(tail));
          counters_.forest_paths_sent.fetch_add(1, std::memory_order_relaxed);
          if (!inline_cert.empty()) {
            conn->forest_epoch_sent = epoch;
            counters_.forest_certs_sent.fetch_add(1,
                                                  std::memory_order_relaxed);
          }
        } else {
          EnqueueOwned(conn,
                       EncodeAnswerFramePrelude(reply.request_id, reply.shard,
                                                reply.bundle->bytes.size()));
          EnqueueBundle(conn, std::move(reply.bundle));
        }
        counters_.answers_ok.fetch_add(1, std::memory_order_relaxed);
      } else {
        EnqueueOwned(conn, EncodeErrorAnswerFrame(reply.request_id,
                                                  reply.shard, reply.error));
        counters_.answers_error.fetch_add(1, std::memory_order_relaxed);
      }
    }
    MaybeDispatch(conn);  // queries that arrived while the batch ran
    if (!FlushWrites(conn)) {
      continue;
    }
    ApplyBackpressure(conn);
    UpdateInterest(conn);
  }
}

void SpauthServer::EnqueueOwned(Conn* conn, std::vector<uint8_t> bytes) {
  conn->write_q_bytes += bytes.size();
  OutChunk chunk;
  chunk.bytes = std::move(bytes);
  conn->write_q.push_back(std::move(chunk));
}

void SpauthServer::EnqueueBundle(Conn* conn,
                                 std::shared_ptr<const ProofBundle> bundle) {
  conn->write_q_bytes += bundle->bytes.size();
  OutChunk chunk;
  chunk.bundle = std::move(bundle);
  conn->write_q.push_back(std::move(chunk));
}

bool SpauthServer::FlushWrites(Conn* conn) {
  while (!conn->write_q.empty()) {
    OutChunk& chunk = conn->write_q.front();
    std::span<const uint8_t> data = chunk.data();
    const size_t remaining = data.size() - chunk.offset;
    if (SPAUTH_FAILPOINT_TRIGGERED_ARG("net/write", conn->id)) {
      // Torn write: half the remaining bytes hit the wire, then the
      // connection dies — the client-side decoder must refuse the stump.
      ssize_t torn =
          ::write(conn->fd, data.data() + chunk.offset, remaining / 2);
      if (torn > 0) {
        counters_.bytes_written.fetch_add(static_cast<uint64_t>(torn),
                                          std::memory_order_relaxed);
      }
      CloseConn(conn->id, &counters_.conns_killed);
      return false;
    }
    ssize_t n = ::write(conn->fd, data.data() + chunk.offset, remaining);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      }
      CloseConn(conn->id, &counters_.conns_closed);
      return false;
    }
    counters_.bytes_written.fetch_add(static_cast<uint64_t>(n),
                                      std::memory_order_relaxed);
    if (chunk.bundle) {
      counters_.proof_bytes_sent.fetch_add(static_cast<uint64_t>(n),
                                           std::memory_order_relaxed);
    }
    chunk.offset += static_cast<size_t>(n);
    conn->write_q_bytes -= static_cast<size_t>(n);
    if (chunk.offset == data.size()) {
      conn->write_q.pop_front();
    }
    if (static_cast<size_t>(n) < remaining) {
      break;  // kernel buffer full: EPOLLOUT will resume
    }
  }
  if (conn->read_paused &&
      conn->write_q_bytes <= options_.write_low_watermark) {
    conn->read_paused = false;
  }
  return true;
}

void SpauthServer::ApplyBackpressure(Conn* conn) {
  if (!conn->read_paused &&
      conn->write_q_bytes >= options_.write_high_watermark) {
    conn->read_paused = true;
    counters_.backpressure_stalls.fetch_add(1, std::memory_order_relaxed);
  }
}

void SpauthServer::UpdateInterest(Conn* conn) {
  epoll_event ev{};
  ev.events = (conn->read_paused ? 0u : static_cast<uint32_t>(EPOLLIN)) |
              (conn->write_q.empty() ? 0u : static_cast<uint32_t>(EPOLLOUT));
  ev.data.u64 = conn->id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void SpauthServer::CloseConn(uint64_t conn_id,
                             std::atomic<uint64_t>* counter) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) {
    return;
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->fd, nullptr);
  ::close(it->second->fd);
  conns_.erase(it);
  counter->fetch_add(1, std::memory_order_relaxed);
}

ServerInfoMsg SpauthServer::MakeServerInfo(
    uint32_t negotiated_version) const {
  ServerInfoMsg info;
  info.protocol_version = negotiated_version;
  const Certificate cert = engine_->shard(0).certificate();
  info.method = cert.params.method;
  info.num_nodes = cert.params.num_network_leaves;
  info.num_groups = static_cast<uint32_t>(engine_->num_groups());
  info.certificate_version = cert.params.version;
  info.owner_key = owner_key_;
  if (negotiated_version >= 2) {
    if (auto fleet = engine_->forest()) {
      info.forest_present = true;
      info.forest = fleet->certificate;
    }
  }
  return info;
}

ServerStats SpauthServer::stats() const {
  ServerStats s;
  s.conns_accepted = counters_.conns_accepted.load(std::memory_order_relaxed);
  s.conns_closed = counters_.conns_closed.load(std::memory_order_relaxed);
  s.conns_refused = counters_.conns_refused.load(std::memory_order_relaxed);
  s.conns_killed = counters_.conns_killed.load(std::memory_order_relaxed);
  s.frames_received =
      counters_.frames_received.load(std::memory_order_relaxed);
  s.frames_malformed =
      counters_.frames_malformed.load(std::memory_order_relaxed);
  s.queries_received =
      counters_.queries_received.load(std::memory_order_relaxed);
  s.answers_ok = counters_.answers_ok.load(std::memory_order_relaxed);
  s.answers_error = counters_.answers_error.load(std::memory_order_relaxed);
  s.batches_dispatched =
      counters_.batches_dispatched.load(std::memory_order_relaxed);
  s.proof_bytes_sent =
      counters_.proof_bytes_sent.load(std::memory_order_relaxed);
  s.proof_bytes_copied =
      counters_.proof_bytes_copied.load(std::memory_order_relaxed);
  s.bytes_read = counters_.bytes_read.load(std::memory_order_relaxed);
  s.bytes_written = counters_.bytes_written.load(std::memory_order_relaxed);
  s.backpressure_stalls =
      counters_.backpressure_stalls.load(std::memory_order_relaxed);
  s.forest_paths_sent =
      counters_.forest_paths_sent.load(std::memory_order_relaxed);
  s.forest_certs_sent =
      counters_.forest_certs_sent.load(std::memory_order_relaxed);
  return s;
}

WireStats SpauthServer::SnapshotWireStats() const {
  const ServerStats s = stats();
  return WireStats{
      {"conns_accepted", s.conns_accepted},
      {"conns_closed", s.conns_closed},
      {"conns_refused", s.conns_refused},
      {"conns_killed", s.conns_killed},
      {"frames_received", s.frames_received},
      {"frames_malformed", s.frames_malformed},
      {"queries_received", s.queries_received},
      {"answers_ok", s.answers_ok},
      {"answers_error", s.answers_error},
      {"batches_dispatched", s.batches_dispatched},
      {"proof_bytes_sent", s.proof_bytes_sent},
      {"proof_bytes_copied", s.proof_bytes_copied},
      {"bytes_read", s.bytes_read},
      {"bytes_written", s.bytes_written},
      {"backpressure_stalls", s.backpressure_stalls},
      {"forest_paths_sent", s.forest_paths_sent},
      {"forest_certs_sent", s.forest_certs_sent},
  };
}

}  // namespace spauth
