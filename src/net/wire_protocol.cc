#include "net/wire_protocol.h"

#include <cstring>

namespace spauth {
namespace {

/// Wraps any parse defect as the single kMalformed refusal surface.
Status Malformed(std::string_view what, const Status& cause) {
  return Status::Malformed(std::string(what) + ": " + cause.ToString());
}

Status RequireAtEnd(const ByteReader& reader, std::string_view what) {
  if (!reader.AtEnd()) {
    return Status::Malformed(std::string(what) + ": trailing garbage");
  }
  return Status::Ok();
}

Result<StatusCode> ParseStatusCode(uint8_t wire) {
  if (wire > static_cast<uint8_t>(StatusCode::kCorruption)) {
    return Status::Malformed("status code out of range");
  }
  return static_cast<StatusCode>(wire);
}

}  // namespace

void EncodeFrameHeader(MsgType type, size_t payload_size, ByteWriter* out) {
  out->WriteU32(kWireMagic);
  out->WriteU8(static_cast<uint8_t>(type));
  out->WriteU32(static_cast<uint32_t>(payload_size));
}

std::vector<uint8_t> EncodeFrame(MsgType type,
                                 std::span<const uint8_t> payload) {
  ByteWriter w;
  w.Reserve(kFrameHeaderSize + payload.size());
  EncodeFrameHeader(type, payload.size(), &w);
  w.WriteBytes(payload);
  return w.TakeBytes();
}

std::vector<uint8_t> EncodeHelloFrame(const HelloMsg& msg) {
  ByteWriter payload;
  payload.WriteU32(msg.protocol_version);
  return EncodeFrame(MsgType::kHello, payload.view());
}

std::vector<uint8_t> EncodeServerInfoFrame(const ServerInfoMsg& msg) {
  ByteWriter payload;
  payload.WriteU32(msg.protocol_version);
  payload.WriteU8(static_cast<uint8_t>(msg.method));
  payload.WriteU32(msg.num_nodes);
  payload.WriteU32(msg.num_groups);
  payload.WriteU32(msg.certificate_version);
  msg.owner_key.Serialize(&payload);
  // v2 trailing section. The caller (server) leaves forest_present false
  // for v1 clients, whose parsers stop exactly here.
  if (msg.forest_present) {
    payload.WriteU8(1);
    msg.forest.Serialize(&payload);
  }
  return EncodeFrame(MsgType::kServerInfo, payload.view());
}

std::vector<uint8_t> EncodeQueryFrame(const QueryMsg& msg) {
  ByteWriter payload;
  payload.WriteU64(msg.request_id);
  payload.WriteU32(msg.query.source);
  payload.WriteU32(msg.query.target);
  return EncodeFrame(MsgType::kQuery, payload.view());
}

std::vector<uint8_t> EncodeStatsRequestFrame() {
  return EncodeFrame(MsgType::kStatsRequest, {});
}

std::vector<uint8_t> EncodeStatsFrame(const WireStats& stats) {
  ByteWriter payload;
  payload.WriteU32(static_cast<uint32_t>(stats.size()));
  for (const auto& [key, value] : stats) {
    payload.WriteString(key);
    payload.WriteU64(value);
  }
  return EncodeFrame(MsgType::kStats, payload.view());
}

std::vector<uint8_t> EncodeErrorAnswerFrame(uint64_t request_id,
                                            uint32_t shard,
                                            const Status& error) {
  ByteWriter payload;
  payload.WriteU64(request_id);
  payload.WriteU32(shard);
  payload.WriteU8(static_cast<uint8_t>(error.code()));
  payload.WriteString(error.message());
  return EncodeFrame(MsgType::kAnswer, payload.view());
}

std::vector<uint8_t> EncodeAnswerFramePrelude(uint64_t request_id,
                                              uint32_t shard,
                                              size_t proof_size,
                                              size_t tail_size) {
  // The declared payload covers the prelude AND the proof bytes the caller
  // streams from the shared bundle after this buffer, AND the owned forest
  // tail (if any) after those.
  const size_t payload_size = sizeof(uint64_t) + sizeof(uint32_t) + 1 +
                              sizeof(uint32_t) + proof_size + tail_size;
  ByteWriter w;
  w.Reserve(kFrameHeaderSize + payload_size - proof_size - tail_size);
  EncodeFrameHeader(MsgType::kAnswer, payload_size, &w);
  w.WriteU64(request_id);
  w.WriteU32(shard);
  w.WriteU8(static_cast<uint8_t>(StatusCode::kOk));
  w.WriteU32(static_cast<uint32_t>(proof_size));
  return w.TakeBytes();
}

std::vector<uint8_t> EncodeAnswerForestTail(
    std::span<const uint8_t> encoded_path,
    std::span<const uint8_t> encoded_certificate) {
  uint8_t flags = kAnswerFlagForestPath;
  if (!encoded_certificate.empty()) {
    flags |= kAnswerFlagForestCertificate;
  }
  ByteWriter w;
  w.Reserve(1 + sizeof(uint32_t) + encoded_path.size() +
            (encoded_certificate.empty()
                 ? 0
                 : sizeof(uint32_t) + encoded_certificate.size()));
  w.WriteU8(flags);
  w.WriteLengthPrefixed(encoded_path);
  if (!encoded_certificate.empty()) {
    w.WriteLengthPrefixed(encoded_certificate);
  }
  return w.TakeBytes();
}

Status ParseHello(std::span<const uint8_t> payload, HelloMsg* out) {
  ByteReader r(payload);
  Status s = r.ReadU32(&out->protocol_version);
  if (!s.ok()) {
    return Malformed("hello", s);
  }
  return RequireAtEnd(r, "hello");
}

Status ParseServerInfo(std::span<const uint8_t> payload, ServerInfoMsg* out) {
  ByteReader r(payload);
  uint8_t method_wire = 0;
  Status s = r.ReadU32(&out->protocol_version);
  if (s.ok()) s = r.ReadU8(&method_wire);
  if (s.ok()) s = r.ReadU32(&out->num_nodes);
  if (s.ok()) s = r.ReadU32(&out->num_groups);
  if (s.ok()) s = r.ReadU32(&out->certificate_version);
  if (!s.ok()) {
    return Malformed("server info", s);
  }
  auto method = ParseMethodKind(method_wire);
  if (!method.ok()) {
    return Malformed("server info", method.status());
  }
  out->method = method.value();
  auto key = RsaPublicKey::Deserialize(&r);
  if (!key.ok()) {
    return Malformed("server info owner key", key.status());
  }
  out->owner_key = std::move(key).value();
  // v2 trailing section: a v1 frame ends here, which is not a defect.
  out->forest_present = false;
  out->forest = ForestCertificate{};
  if (r.AtEnd()) {
    return Status::Ok();
  }
  uint8_t present = 0;
  s = r.ReadU8(&present);
  if (!s.ok() || present > 1) {
    return Status::Malformed("server info: bad forest-present byte");
  }
  if (present == 1) {
    s = ForestCertificate::DeserializeInto(&r, &out->forest);
    if (!s.ok()) {
      return Malformed("server info forest certificate", s);
    }
    out->forest_present = true;
  }
  return RequireAtEnd(r, "server info");
}

Status ParseQuery(std::span<const uint8_t> payload, QueryMsg* out) {
  ByteReader r(payload);
  Status s = r.ReadU64(&out->request_id);
  if (s.ok()) s = r.ReadU32(&out->query.source);
  if (s.ok()) s = r.ReadU32(&out->query.target);
  if (!s.ok()) {
    return Malformed("query", s);
  }
  return RequireAtEnd(r, "query");
}

Status ParseAnswer(std::span<const uint8_t> payload, AnswerMsg* out) {
  ByteReader r(payload);
  uint8_t status_wire = 0;
  Status s = r.ReadU64(&out->request_id);
  if (s.ok()) s = r.ReadU32(&out->shard);
  if (s.ok()) s = r.ReadU8(&status_wire);
  if (!s.ok()) {
    return Malformed("answer", s);
  }
  auto code = ParseStatusCode(status_wire);
  if (!code.ok()) {
    return code.status();
  }
  out->status = code.value();
  out->error.clear();
  out->proof.clear();
  out->forest_path.clear();
  out->forest_certificate.clear();
  if (out->status == StatusCode::kOk) {
    s = r.ReadLengthPrefixed(&out->proof);
    if (!s.ok()) {
      return Malformed("answer proof", s);
    }
  } else {
    s = r.ReadString(&out->error);
    if (!s.ok()) {
      return Malformed("answer error", s);
    }
  }
  // v2 trailing sections: a v1 frame ends here, which is not a defect.
  if (r.AtEnd()) {
    return Status::Ok();
  }
  uint8_t flags = 0;
  s = r.ReadU8(&flags);
  if (!s.ok() ||
      (flags & ~(kAnswerFlagForestPath | kAnswerFlagForestCertificate)) !=
          0) {
    // Unknown flag bits are a framing defect, not a future extension: the
    // server only emits sections this client's declared version knows.
    return Status::Malformed("answer: unknown trailing-section flags");
  }
  if (flags & kAnswerFlagForestPath) {
    s = r.ReadLengthPrefixed(&out->forest_path);
    if (!s.ok()) {
      return Malformed("answer forest path", s);
    }
  }
  if (flags & kAnswerFlagForestCertificate) {
    s = r.ReadLengthPrefixed(&out->forest_certificate);
    if (!s.ok()) {
      return Malformed("answer forest certificate", s);
    }
  }
  return RequireAtEnd(r, "answer");
}

Status ParseStats(std::span<const uint8_t> payload, WireStats* out) {
  ByteReader r(payload);
  uint32_t count = 0;
  Status s = r.ReadU32(&count);
  if (!s.ok()) {
    return Malformed("stats", s);
  }
  // Each entry costs at least 12 bytes on the wire; a count beyond that
  // bound is a hostile prefix, not a big payload.
  if (count > payload.size() / 12) {
    return Status::Malformed("stats: entry count exceeds payload");
  }
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string key;
    uint64_t value = 0;
    s = r.ReadString(&key);
    if (s.ok()) s = r.ReadU64(&value);
    if (!s.ok()) {
      return Malformed("stats entry", s);
    }
    out->emplace_back(std::move(key), value);
  }
  return RequireAtEnd(r, "stats");
}

void FrameDecoder::Feed(std::span<const uint8_t> bytes) {
  if (poisoned_) {
    return;
  }
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

Status FrameDecoder::Poison(std::string message) {
  poisoned_ = true;
  buf_.clear();
  consumed_ = 0;
  return Status::Malformed(std::move(message));
}

void FrameDecoder::Compact() {
  if (consumed_ == 0) {
    return;
  }
  if (consumed_ == buf_.size()) {
    buf_.clear();
    consumed_ = 0;
  } else if (consumed_ >= 4096 && consumed_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
}

Result<bool> FrameDecoder::Next(WireFrame* out) {
  if (poisoned_) {
    return Status::Malformed("frame stream already poisoned");
  }
  const size_t available = buf_.size() - consumed_;
  if (available < kFrameHeaderSize) {
    Compact();
    return false;
  }
  ByteReader header(std::span<const uint8_t>(buf_).subspan(consumed_));
  uint32_t magic = 0;
  uint8_t type_wire = 0;
  uint32_t payload_len = 0;
  // Header reads cannot underflow: available >= kFrameHeaderSize.
  (void)header.ReadU32(&magic);
  (void)header.ReadU8(&type_wire);
  (void)header.ReadU32(&payload_len);
  if (magic != kWireMagic) {
    return Poison("bad frame magic");
  }
  if (type_wire < static_cast<uint8_t>(MsgType::kHello) ||
      type_wire > static_cast<uint8_t>(MsgType::kStats)) {
    return Poison("unknown frame type");
  }
  if (payload_len > max_payload_) {
    return Poison("declared frame payload exceeds limit");
  }
  if (available < kFrameHeaderSize + payload_len) {
    Compact();
    return false;  // mid-frame: wait for the rest (or the disconnect)
  }
  out->type = static_cast<MsgType>(type_wire);
  const uint8_t* payload = buf_.data() + consumed_ + kFrameHeaderSize;
  out->payload.assign(payload, payload + payload_len);
  consumed_ += kFrameHeaderSize + payload_len;
  Compact();
  return true;
}

}  // namespace spauth
