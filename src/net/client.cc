#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <unordered_map>
#include <utility>

namespace spauth {
namespace {

/// Key equality by canonical encoding: the comparison the handshake trusts.
bool SameKey(const RsaPublicKey& a, const RsaPublicKey& b) {
  ByteWriter wa;
  ByteWriter wb;
  a.Serialize(&wa);
  b.Serialize(&wb);
  return wa.bytes() == wb.bytes();
}

/// Soundness refusals must not be retried: the peer will not become
/// trustworthy by asking again.
bool RetryableConnectFailure(const Status& s) {
  return IsRetryable(s.code());
}

}  // namespace

NetClient::NetClient(RsaPublicKey owner_key, NetClientOptions options)
    : owner_key_(owner_key),
      options_(std::move(options)),
      verifier_(std::move(owner_key)),
      decoder_(options_.max_frame_payload) {}

NetClient::~NetClient() { Disconnect(); }

void NetClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  decoder_ = FrameDecoder(options_.max_frame_payload);
}

void NetClient::SetEndpoint(std::string host, uint16_t port) {
  Disconnect();
  options_.host = std::move(host);
  options_.port = port;
}

Status NetClient::Connect() {
  uint64_t backoff_us = options_.backoff_base_us;
  const uint64_t cap_us =
      options_.max_backoff_us > 0 ? options_.max_backoff_us : 1;
  Status last = Status::Unavailable("no connect attempt made");
  const size_t attempts = std::max<size_t>(1, options_.connect_attempts);
  for (size_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0 && backoff_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(
          std::min(backoff_us, cap_us)));
      backoff_us = static_cast<uint64_t>(std::min(
          static_cast<double>(cap_us),
          static_cast<double>(backoff_us) * options_.backoff_multiplier));
    }
    last = ConnectOnce();
    if (last.ok()) {
      last = Handshake();
      if (last.ok()) {
        stats_.connects++;
        if (handshaken_once_) {
          stats_.reconnects++;
        }
        handshaken_once_ = true;
        return Status::Ok();
      }
      Disconnect();
      if (!RetryableConnectFailure(last)) {
        return last;  // key/protocol/layout refusal: never retried
      }
    }
  }
  return last;
}

Status NetClient::ConnectOnce() {
  Disconnect();
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(options_.io_timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((options_.io_timeout_ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("unparseable host: " + options_.host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s =
        Status::Unavailable(std::string("connect: ") + std::strerror(errno));
    ::close(fd);
    return s;
  }
  fd_ = fd;
  return Status::Ok();
}

Status NetClient::Handshake() {
  HelloMsg hello;
  SPAUTH_RETURN_IF_ERROR(SendBytes(EncodeHelloFrame(hello)));
  WireFrame frame;
  SPAUTH_RETURN_IF_ERROR(ReadFrame(&frame));
  if (frame.type != MsgType::kServerInfo) {
    return Refuse(Status::Malformed("handshake: expected server info"));
  }
  ServerInfoMsg info;
  Status parsed = ParseServerInfo(frame.payload, &info);
  if (!parsed.ok()) {
    return Refuse(parsed);
  }
  if (info.protocol_version < kMinProtocolVersion ||
      info.protocol_version > kProtocolVersion) {
    return Status::FailedPrecondition(
        "server speaks protocol version " +
        std::to_string(info.protocol_version) + ", this client speaks " +
        std::to_string(kMinProtocolVersion) + ".." +
        std::to_string(kProtocolVersion));
  }
  if (!SameKey(info.owner_key, owner_key_)) {
    // The soundness anchor: a server presenting a different owner key is
    // at best misconfigured and at worst an impersonator. Refuse outright.
    return Status::VerificationFailed(
        "server's advertised owner key does not match the trusted key");
  }
  if (info.num_groups == 0) {
    return Refuse(Status::Malformed("handshake: zero serving groups"));
  }
  if (!handshaken_once_) {
    tracked_groups_ = info.num_groups;
    verifier_.TrackShardVersions(tracked_groups_);
    verifier_.SetStalenessBound(options_.staleness_bound);
  } else if (info.num_groups != tracked_groups_) {
    // Re-keying the watermark table on the server's say-so would let a
    // replayed deployment dodge freshness enforcement.
    return Status::FailedPrecondition(
        "server group count changed across reconnect (" +
        std::to_string(tracked_groups_) + " -> " +
        std::to_string(info.num_groups) + ")");
  }
  if (forest_mode_ && !info.forest_present) {
    // Downgrade refusal: a session that has pinned a fleet epoch must not
    // fall back to trusting per-shard certificates on a reconnect — an
    // impersonator could otherwise shed the forest and replay old shards.
    return Status::VerificationFailed(
        "server stopped presenting a forest certificate across reconnect");
  }
  if (info.forest_present) {
    // The epoch's ONE RSA verify (a re-presented current epoch is free).
    // The verifier's epoch watermark is monotone across reconnects, so a
    // stale forest is refused here — a soundness refusal, never retried.
    const uint32_t before = verifier_.FleetEpochWatermark();
    Status accepted = verifier_.AcceptForestCertificate(info.forest);
    if (!accepted.ok()) {
      return accepted;
    }
    if (verifier_.FleetEpochWatermark() != before || !forest_mode_) {
      stats_.forest_certs_accepted++;
    }
    forest_mode_ = true;
  }
  info_ = info;
  return Status::Ok();
}

Status NetClient::EnsureConnected() {
  if (connected()) {
    return Status::Ok();
  }
  return Connect();
}

Status NetClient::SendBytes(std::span<const uint8_t> bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      Status s = (errno == EAGAIN || errno == EWOULDBLOCK)
                     ? Status::DeadlineExceeded("send timed out")
                     : Status::Unavailable(std::string("send: ") +
                                           std::strerror(errno));
      Disconnect();
      return s;
    }
    sent += static_cast<size_t>(n);
    stats_.bytes_sent += static_cast<uint64_t>(n);
  }
  return Status::Ok();
}

Status NetClient::ReadFrame(WireFrame* out) {
  uint8_t buf[64 << 10];
  for (;;) {
    auto next = decoder_.Next(out);
    if (!next.ok()) {
      return Refuse(next.status());
    }
    if (next.value()) {
      return Status::Ok();
    }
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      stats_.bytes_received += static_cast<uint64_t>(n);
      decoder_.Feed(
          std::span<const uint8_t>(buf, static_cast<size_t>(n)));
      continue;
    }
    if (n == 0) {
      // Mid-frame EOF — a torn answer. The partial bytes are discarded
      // with the connection; nothing unverifiable escapes upward.
      Disconnect();
      return Status::Unavailable("connection closed by server");
    }
    if (errno == EINTR) {
      continue;
    }
    Status s = (errno == EAGAIN || errno == EWOULDBLOCK)
                   ? Status::DeadlineExceeded("receive timed out")
                   : Status::Unavailable(std::string("recv: ") +
                                         std::strerror(errno));
    Disconnect();
    return s;
  }
}

Status NetClient::Refuse(Status why) {
  stats_.frames_refused++;
  Disconnect();
  return why;
}

Result<WireVerification> NetClient::VerifyAnswer(const spauth::Query& query,
                                                 const AnswerMsg& answer) {
  if (answer.status != StatusCode::kOk) {
    stats_.server_errors++;
    return Status(answer.status, "server: " + answer.error);
  }
  if (answer.shard >= tracked_groups_) {
    // An out-of-range shard id would silently skip watermark enforcement.
    return Refuse(Status::Malformed("answer shard id out of range"));
  }
  WireVerification v;
  if (forest_mode_) {
    // A fleet rotation mid-connection ships the new epoch's certificate
    // inline with its first answer; install it (one RSA verify) before
    // checking the path. A bad or stale inline certificate is a soundness
    // refusal, not a per-answer rejection.
    if (!answer.forest_certificate.empty()) {
      const uint32_t before = verifier_.FleetEpochWatermark();
      Status accepted =
          verifier_.AcceptForestCertificate(answer.forest_certificate);
      if (!accepted.ok()) {
        return Refuse(accepted);
      }
      if (verifier_.FleetEpochWatermark() != before) {
        stats_.forest_certs_accepted++;
      }
    }
    // In forest mode every answer must carry its path — an answer without
    // one would have to fall back to the per-shard signature, which the
    // fleet no longer produces; refusing is also what stops a provider
    // from serving unsigned certificates bare.
    v = verifier_.VerifyForest(query, answer.proof, answer.forest_path,
                               answer.shard);
    stats_.forest_answers++;
  } else {
    v = verifier_.Verify(query, answer.proof, answer.shard);
  }
  if (v.outcome.accepted) {
    stats_.answers_accepted++;
  } else {
    stats_.answers_rejected++;
  }
  return v;
}

Result<WireVerification> NetClient::Query(const spauth::Query& query) {
  SPAUTH_RETURN_IF_ERROR(EnsureConnected());
  QueryMsg msg;
  msg.request_id = next_request_id_++;
  msg.query = query;
  stats_.queries_sent++;
  SPAUTH_RETURN_IF_ERROR(SendBytes(EncodeQueryFrame(msg)));
  WireFrame frame;
  SPAUTH_RETURN_IF_ERROR(ReadFrame(&frame));
  if (frame.type != MsgType::kAnswer) {
    return Refuse(Status::Malformed("expected answer frame"));
  }
  AnswerMsg answer;
  Status parsed = ParseAnswer(frame.payload, &answer);
  if (!parsed.ok()) {
    return Refuse(parsed);
  }
  if (answer.request_id != msg.request_id) {
    return Refuse(Status::Malformed("answer for unexpected request id"));
  }
  return VerifyAnswer(query, answer);
}

std::vector<Result<WireVerification>> NetClient::QueryBatch(
    std::span<const spauth::Query> queries) {
  std::vector<Result<WireVerification>> results;
  results.reserve(queries.size());
  Status conn = EnsureConnected();
  if (!conn.ok()) {
    results.assign(queries.size(), Result<WireVerification>(conn));
    return results;
  }
  // Pipeline: one contiguous send of every query frame, so the server's
  // per-connection coalescing sees them as one batch.
  ByteWriter pipelined;
  std::unordered_map<uint64_t, size_t> index_of;
  index_of.reserve(queries.size());
  std::vector<uint64_t> ids(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryMsg msg;
    msg.request_id = next_request_id_++;
    msg.query = queries[i];
    ids[i] = msg.request_id;
    index_of.emplace(msg.request_id, i);
    pipelined.WriteBytes(EncodeQueryFrame(msg));
  }
  stats_.queries_sent += queries.size();
  results.assign(queries.size(),
                 Result<WireVerification>(
                     Status::Unavailable("answer never arrived")));
  Status sent = SendBytes(pipelined.view());
  if (!sent.ok()) {
    results.assign(queries.size(), Result<WireVerification>(sent));
    return results;
  }
  for (size_t answered = 0; answered < queries.size(); ++answered) {
    WireFrame frame;
    Status s = ReadFrame(&frame);
    if (s.ok() && frame.type != MsgType::kAnswer) {
      s = Refuse(Status::Malformed("expected answer frame"));
    }
    AnswerMsg answer;
    if (s.ok()) {
      s = ParseAnswer(frame.payload, &answer);
      if (!s.ok()) {
        s = Refuse(s);
      }
    }
    if (s.ok() && index_of.find(answer.request_id) == index_of.end()) {
      s = Refuse(Status::Malformed("answer for unexpected request id"));
    }
    if (!s.ok()) {
      // Transport failure mid-batch: every still-unanswered slot fails.
      for (auto& [id, idx] : index_of) {
        results[idx] = Result<WireVerification>(s);
      }
      return results;
    }
    const size_t idx = index_of[answer.request_id];
    index_of.erase(answer.request_id);
    results[idx] = VerifyAnswer(queries[idx], answer);
  }
  return results;
}

Result<WireStats> NetClient::FetchServerStats() {
  SPAUTH_RETURN_IF_ERROR(EnsureConnected());
  SPAUTH_RETURN_IF_ERROR(SendBytes(EncodeStatsRequestFrame()));
  WireFrame frame;
  SPAUTH_RETURN_IF_ERROR(ReadFrame(&frame));
  if (frame.type != MsgType::kStats) {
    return Refuse(Status::Malformed("expected stats frame"));
  }
  WireStats stats;
  Status parsed = ParseStats(frame.payload, &stats);
  if (!parsed.ok()) {
    return Refuse(parsed);
  }
  return stats;
}

}  // namespace spauth
