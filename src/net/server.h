// SpauthServer — the networked provider: a ShardedEngine behind a TCP
// listener speaking the length-prefixed wire protocol (net/wire_protocol.h)
// over a single-threaded epoll event loop.
//
// Architecture:
//
//   epoll loop (1 thread)          worker pool (ThreadPool)
//   ---------------------          -----------------------
//   accept / read / frame   --->   per-connection query batches through
//   decode / write / close  <---   ShardedEngine::AnswerBatch; results
//        ^ eventfd wakeup          posted to a completion queue
//
// The loop owns every connection outright (no per-connection locks): reads
// feed an incremental FrameDecoder, decoded queries accumulate per
// connection, and at most ONE batch per connection is in flight on the
// worker pool at a time — queries that arrive while a batch runs coalesce
// into the next batch, so a fast client gets natural request coalescing
// and a slow one never monopolizes workers. Workers never touch sockets;
// they post completions and ring the loop's eventfd.
//
// Zero-copy serving: an OK answer is queued as two chunks — a ~21-byte
// owned prelude (frame header + request metadata) and the shared
// ProofBundle pointer itself. write(2) transmits straight from the
// bundle's cache-resident bytes; an LRU hit travels cache slot → socket
// with zero proof-byte copies. ServerStats::proof_bytes_copied exists to
// keep that claim honest: any future code path that stages proof bytes
// into an owned buffer must account there, and the e2e test pins it at 0.
//
// Backpressure: per-connection write queues are bounded by watermarks.
// Above the high watermark the loop stops reading from that connection
// (EPOLLIN off) so a slow consumer stalls only itself; reading resumes
// below the low watermark. Buffers never grow with the number of unread
// responses a dead client refuses to drain.
//
// Fail points (util/failpoint.h): net/accept refuses fresh connections,
// net/read caps one read at a single byte (short-read storm), net/write
// tears a queued write and kills the connection, net/conn_kill closes a
// connection outright on readiness — all arg-filtered by connection id.
#ifndef SPAUTH_NET_SERVER_H_
#define SPAUTH_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/sharded_engine.h"
#include "crypto/rsa.h"
#include "net/wire_protocol.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace spauth {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back with port() after Start().
  uint16_t port = 0;
  /// Worker threads serving query batches (>= 1).
  size_t worker_threads = 2;
  /// Threads each ShardedEngine::AnswerBatch call may use.
  size_t batch_threads = 1;
  size_t max_frame_payload = kDefaultMaxFramePayload;
  /// Write-queue backpressure watermarks (bytes, per connection).
  size_t write_high_watermark = 4u << 20;
  size_t write_low_watermark = 512u << 10;
  /// Bytes per read(2) call (the net/read fail point caps this at 1).
  size_t read_chunk_bytes = 64u << 10;
  int listen_backlog = 128;
};

/// Cumulative serving-plane counters (all monotone).
struct ServerStats {
  uint64_t conns_accepted = 0;
  uint64_t conns_closed = 0;   // orderly close (EOF, malformed, shutdown)
  uint64_t conns_refused = 0;  // net/accept fail point
  uint64_t conns_killed = 0;   // net/conn_kill + net/write fail points
  uint64_t frames_received = 0;
  uint64_t frames_malformed = 0;
  uint64_t queries_received = 0;
  uint64_t answers_ok = 0;
  uint64_t answers_error = 0;
  uint64_t batches_dispatched = 0;
  uint64_t proof_bytes_sent = 0;    // proof payload bytes written to sockets
  uint64_t proof_bytes_copied = 0;  // proof bytes staged through an owned
                                    // buffer — 0 by design (see header);
                                    // forest tails are per-answer bytes,
                                    // never booked here
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t backpressure_stalls = 0;  // times a connection's reads paused
  uint64_t forest_paths_sent = 0;    // v2 answers carrying a forest path
  uint64_t forest_certs_sent = 0;    // inline forest certs (epoch changes)
};

class SpauthServer {
 public:
  /// Serves `engine` (borrowed; must outlive the server). `owner_key` is
  /// the data owner's public key advertised in the handshake — clients
  /// compare it against their out-of-band trusted key.
  SpauthServer(const ShardedEngine* engine, RsaPublicKey owner_key,
               ServerOptions options = {});
  ~SpauthServer();

  SpauthServer(const SpauthServer&) = delete;
  SpauthServer& operator=(const SpauthServer&) = delete;

  /// Binds, listens and starts the event loop + worker pool.
  /// FailedPrecondition when already started.
  Status Start();
  /// Stops the loop, joins workers, closes every connection. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (the real one when options.port was 0). 0 before Start.
  uint16_t port() const { return port_; }

  ServerStats stats() const;

 private:
  struct Conn;
  struct Completion;

  void EventLoop();
  void AcceptNewConnections();
  /// All Handle/Flush helpers run on the loop thread only.
  void HandleReadable(Conn* conn);
  /// Decodes and acts on every complete frame; false when the connection
  /// was closed (malformed stream or protocol violation).
  bool DrainFrames(Conn* conn);
  void MaybeDispatch(Conn* conn);
  void DrainCompletions();
  /// Writes queued chunks until EAGAIN or empty; false when the connection
  /// was closed (write error or torn-write fail point).
  bool FlushWrites(Conn* conn);
  void EnqueueOwned(Conn* conn, std::vector<uint8_t> bytes);
  void EnqueueBundle(Conn* conn, std::shared_ptr<const ProofBundle> bundle);
  void ApplyBackpressure(Conn* conn);
  void UpdateInterest(Conn* conn);
  void CloseConn(uint64_t conn_id, std::atomic<uint64_t>* counter);
  void WakeLoop();

  ServerInfoMsg MakeServerInfo(uint32_t negotiated_version) const;
  WireStats SnapshotWireStats() const;

  const ShardedEngine* engine_;
  RsaPublicKey owner_key_;
  ServerOptions options_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t port_ = 0;
  std::thread loop_;
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  bool started_ = false;

  // Connections are keyed by a monotone id (never a reused fd) so a
  // completion for a connection that died mid-batch is dropped instead of
  // delivered to an unrelated client on the recycled descriptor.
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
  uint64_t next_conn_id_ = 2;  // 0 = listener, 1 = eventfd

  std::mutex completions_mu_;
  std::vector<Completion> completions_;

  struct Counters {
    std::atomic<uint64_t> conns_accepted{0};
    std::atomic<uint64_t> conns_closed{0};
    std::atomic<uint64_t> conns_refused{0};
    std::atomic<uint64_t> conns_killed{0};
    std::atomic<uint64_t> frames_received{0};
    std::atomic<uint64_t> frames_malformed{0};
    std::atomic<uint64_t> queries_received{0};
    std::atomic<uint64_t> answers_ok{0};
    std::atomic<uint64_t> answers_error{0};
    std::atomic<uint64_t> batches_dispatched{0};
    std::atomic<uint64_t> proof_bytes_sent{0};
    std::atomic<uint64_t> proof_bytes_copied{0};
    std::atomic<uint64_t> bytes_read{0};
    std::atomic<uint64_t> bytes_written{0};
    std::atomic<uint64_t> backpressure_stalls{0};
    std::atomic<uint64_t> forest_paths_sent{0};
    std::atomic<uint64_t> forest_certs_sent{0};
  };
  mutable Counters counters_;
};

}  // namespace spauth

#endif  // SPAUTH_NET_SERVER_H_
