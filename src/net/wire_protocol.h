// Wire protocol of the networked serving tier (spauth_server /
// spauth_client): a length-prefixed binary framing over TCP, built on the
// same canonical little-endian ByteWriter/ByteReader encoding the proofs
// themselves use.
//
// Every message on the wire is one frame:
//
//   magic        u32   kWireMagic ("SPTH" as little-endian bytes)
//   type         u8    MsgType
//   payload_len  u32   bytes that follow
//   payload      payload_len bytes (per-type layout below)
//
// The 9-byte header is deliberately fixed-size so the decoder can commit to
// a frame boundary before any payload arrives; a bad magic, an unknown
// type, or a declared length above the decoder's cap poisons the stream as
// kMalformed — a hostile or desynchronized peer is cut off, never resynced
// by scanning (scanning re-opens every framing confusion the length prefix
// exists to close).
//
// Message payloads (all integers little-endian):
//
//   kHello         protocol_version u32
//   kServerInfo    protocol_version u32 | method u8 | num_nodes u32 |
//                  num_groups u32 | certificate_version u32 |
//                  owner public key (RsaPublicKey::Serialize)
//                  [v2, optional] forest_present u8 |
//                  forest certificate (ForestCertificate::Serialize)
//   kQuery         request_id u64 | source u32 | target u32
//   kAnswer        request_id u64 | shard u32 | status u8 |
//                  ok:    proof_len u32 | proof bytes (the ProofBundle
//                         wire message, verified by core/client.h)
//                  error: message string (u32 length prefix)
//                  [v2, optional] flags u8 |
//                  flags&1: forest path bytes (u32 length prefix) |
//                  flags&2: forest certificate bytes (u32 length prefix)
//   kStatsRequest  (empty)
//   kStats         count u32 | count * (key string | value u64)
//
// Version negotiation: protocol 2 adds the OPTIONAL trailing forest
// sections above; everything before them is byte-identical to protocol 1.
// A v2 server only emits them to a client whose hello declared version
// >= 2 (per-connection gating), so a v1 client's strict trailing-garbage
// parsers never see them; a v2 parser reading a v1 frame simply finds the
// payload ends where v1 said it would. The forest certificate rides in
// the handshake once and again inline in the first answer after a fleet
// rotation (flags&2), so long-lived connections learn new epochs without
// re-handshaking.
//
// Zero-copy serving: the answer path is split into
// EncodeAnswerFramePrelude (frame header + request_id/shard/status/
// proof_len, a few dozen owned bytes) so the server can queue the proof
// bytes straight out of the shared ProofBundle that lives in the proof
// cache — an LRU hit travels cache slot → socket without a single payload
// copy. A forest answer adds a third, owned tail chunk (flags + the
// fleet's pre-encoded path, per-answer bytes by definition) AFTER the
// shared proof bytes — the proof is never staged into an owned buffer to
// append the tail, which keeps proof_bytes_copied at 0 in forest mode
// too. EncodeFrame-based helpers cover every other (small) message.
#ifndef SPAUTH_NET_WIRE_PROTOCOL_H_
#define SPAUTH_NET_WIRE_PROTOCOL_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/certificate.h"
#include "core/forest_certificate.h"
#include "crypto/rsa.h"
#include "graph/workload.h"
#include "util/byte_buffer.h"
#include "util/status.h"

namespace spauth {

/// "SPTH" as the little-endian u32 a ByteWriter emits.
inline constexpr uint32_t kWireMagic = 0x48545053;
/// Version 2 = version 1 + optional trailing forest sections (see above).
inline constexpr uint32_t kProtocolVersion = 2;
/// Oldest client hello a server still serves (without forest sections).
inline constexpr uint32_t kMinProtocolVersion = 1;

/// kAnswer trailing-section flag bits (v2).
inline constexpr uint8_t kAnswerFlagForestPath = 1;
inline constexpr uint8_t kAnswerFlagForestCertificate = 2;
/// magic u32 | type u8 | payload_len u32.
inline constexpr size_t kFrameHeaderSize = 9;
/// Default cap on a declared payload length. Far above any real proof
/// (even FULL proofs on the bench networks are ~KBs) yet small enough that
/// a hostile 4 GiB length prefix cannot balloon the peer's buffers.
inline constexpr size_t kDefaultMaxFramePayload = 32u << 20;

enum class MsgType : uint8_t {
  kHello = 1,         // client -> server: version handshake
  kServerInfo = 2,    // server -> client: deployment + owner key
  kQuery = 3,         // client -> server
  kAnswer = 4,        // server -> client
  kStatsRequest = 5,  // client -> server: serving counters probe
  kStats = 6,         // server -> client
};

/// One decoded frame: the type plus its raw payload bytes.
struct WireFrame {
  MsgType type = MsgType::kHello;
  std::vector<uint8_t> payload;
};

struct HelloMsg {
  uint32_t protocol_version = kProtocolVersion;
};

/// What a client learns in the handshake: enough to size its workload
/// (num_nodes), its per-shard watermarks (num_groups), and — the soundness
/// anchor — the owner key the server *claims*, which the client checks
/// against the trusted key it was configured with out of band.
struct ServerInfoMsg {
  uint32_t protocol_version = kProtocolVersion;
  MethodKind method = MethodKind::kDij;
  uint32_t num_nodes = 0;
  uint32_t num_groups = 0;
  uint32_t certificate_version = 0;
  RsaPublicKey owner_key;
  // v2: the fleet's current forest certificate, when the deployment runs
  // forest mode (absent on v1 frames and non-forest deployments).
  bool forest_present = false;
  ForestCertificate forest;
};

struct QueryMsg {
  uint64_t request_id = 0;
  Query query;
};

struct AnswerMsg {
  uint64_t request_id = 0;
  uint32_t shard = 0;  // routing group that served (watermark attribution)
  StatusCode status = StatusCode::kOk;
  std::string error;           // set when status != kOk
  std::vector<uint8_t> proof;  // set when status == kOk
  // v2 trailing sections, still encoded (the client verifier decodes
  // them); empty = absent. The certificate appears on the first answer of
  // a fresh fleet epoch so a long-lived connection re-anchors without a
  // re-handshake.
  std::vector<uint8_t> forest_path;
  std::vector<uint8_t> forest_certificate;
};

/// Flat key/value serving counters (kStats payload).
using WireStats = std::vector<std::pair<std::string, uint64_t>>;

// ---------------------------------------------------------------------------
// Encoding. Each helper returns one complete frame, ready to write.
// ---------------------------------------------------------------------------

/// Appends a frame header declaring `payload_size` payload bytes.
void EncodeFrameHeader(MsgType type, size_t payload_size, ByteWriter* out);
/// One complete frame around an already-encoded payload.
std::vector<uint8_t> EncodeFrame(MsgType type,
                                 std::span<const uint8_t> payload);

std::vector<uint8_t> EncodeHelloFrame(const HelloMsg& msg);
std::vector<uint8_t> EncodeServerInfoFrame(const ServerInfoMsg& msg);
std::vector<uint8_t> EncodeQueryFrame(const QueryMsg& msg);
std::vector<uint8_t> EncodeStatsRequestFrame();
std::vector<uint8_t> EncodeStatsFrame(const WireStats& stats);

/// An error answer is small and self-contained: one owned buffer.
std::vector<uint8_t> EncodeErrorAnswerFrame(uint64_t request_id,
                                            uint32_t shard,
                                            const Status& error);

/// The zero-copy split: frame header + answer prelude for an OK answer
/// whose `proof_size` proof bytes FOLLOW the returned buffer on the wire.
/// The caller queues the returned bytes and then the shared bundle's
/// `bytes` span itself; the concatenation is byte-identical to
/// EncodeFrame(kAnswer, <full payload>) (wire_protocol_test pins this).
/// `tail_size` declares the bytes of an owned forest tail the caller will
/// queue AFTER the proof (0 on v1 connections and non-forest answers —
/// the prelude is then byte-identical to the seed's).
std::vector<uint8_t> EncodeAnswerFramePrelude(uint64_t request_id,
                                              uint32_t shard,
                                              size_t proof_size,
                                              size_t tail_size = 0);

/// The owned forest tail of a v2 OK answer: flags byte plus the
/// length-prefixed pre-encoded path, plus the length-prefixed encoded
/// forest certificate when `encoded_certificate` is non-empty (first
/// answer of a fresh epoch on this connection). Its size feeds the
/// prelude's `tail_size`; the proof bytes themselves stay in the shared
/// bundle chunk, uncopied.
std::vector<uint8_t> EncodeAnswerForestTail(
    std::span<const uint8_t> encoded_path,
    std::span<const uint8_t> encoded_certificate = {});

// ---------------------------------------------------------------------------
// Payload parsing. Every helper returns kMalformed on any defect —
// underflow, out-of-range enum, trailing garbage — so callers have exactly
// one refusal path for hostile bytes.
// ---------------------------------------------------------------------------

Status ParseHello(std::span<const uint8_t> payload, HelloMsg* out);
Status ParseServerInfo(std::span<const uint8_t> payload, ServerInfoMsg* out);
Status ParseQuery(std::span<const uint8_t> payload, QueryMsg* out);
Status ParseAnswer(std::span<const uint8_t> payload, AnswerMsg* out);
Status ParseStats(std::span<const uint8_t> payload, WireStats* out);

// ---------------------------------------------------------------------------
// Incremental frame decoder.
// ---------------------------------------------------------------------------

/// Reassembles frames from an arbitrary byte stream: feed whatever the
/// socket produced (single bytes under a short-read storm, many frames in
/// one read), then drain complete frames with Next. The first framing
/// defect poisons the decoder permanently — the connection is no longer
/// trustworthy and must be closed; there is no resync.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload = kDefaultMaxFramePayload)
      : max_payload_(max_payload) {}

  /// Appends received bytes. Accepting bytes after poisoning is a no-op.
  void Feed(std::span<const uint8_t> bytes);

  /// Extracts the next complete frame into `*out`. Returns true when a
  /// frame was produced, false when more bytes are needed, and kMalformed
  /// (poisoning the decoder) on a framing defect: bad magic, unknown
  /// type, or a declared payload length above the cap.
  Result<bool> Next(WireFrame* out);

  /// Bytes buffered but not yet consumed by a completed frame.
  size_t buffered_bytes() const { return buf_.size() - consumed_; }
  bool poisoned() const { return poisoned_; }

 private:
  Status Poison(std::string message);
  /// Drops consumed bytes once they dominate the buffer, so a long-lived
  /// connection's buffer stays proportional to in-flight data.
  void Compact();

  size_t max_payload_;
  std::vector<uint8_t> buf_;
  size_t consumed_ = 0;
  bool poisoned_ = false;
};

}  // namespace spauth

#endif  // SPAUTH_NET_WIRE_PROTOCOL_H_
