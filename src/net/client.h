// NetClient — the networked client role: a blocking TCP session that
// streams queries to a SpauthServer and verifies every answer through the
// standalone verifier (core/client.h) before surfacing it.
//
// Trust model: the client is configured with the data owner's public key
// out of band (exactly the paper's setting — the owner distributes its key,
// the provider is untrusted). The handshake compares the key the server
// advertises against the trusted one and refuses the session on mismatch;
// a verified answer therefore never depends on anything the network said.
//
// Freshness across reconnects: the embedded verifier's per-shard version
// watermarks live in the NetClient, NOT in the connection. A reconnect —
// including one to a different endpoint via SetEndpoint — keeps every
// watermark, so a provider (or an impersonator) that replays an older
// signed certificate after a "failover" is rejected as kStaleCertificate.
// The handshake also pins the group count: a server that suddenly claims a
// different shard layout is refused rather than silently re-keying the
// watermark table.
//
// Forest mode (protocol v2): when the handshake carries a forest
// certificate the client verifies its ONE RSA signature, pins the fleet
// epoch (monotone across reconnects, like the watermarks), and from then
// on authenticates each answer's certificate through the forest path the
// answer carries — no per-answer RSA. Once a session has seen forest
// mode, a reconnect that omits it is refused: a provider must not be able
// to downgrade a client to trusting unsigned per-shard certificates.
//
// Hostile bytes: every inbound frame passes the same hardened FrameDecoder
// the server uses. A framing defect (bad magic, oversized length, unknown
// type), a truncated payload, or a mid-proof disconnect surfaces as an
// error Status and poisons the connection — the client disconnects and
// NEVER feeds unverifiable bytes to the caller as an answer.
#ifndef SPAUTH_NET_CLIENT_H_
#define SPAUTH_NET_CLIENT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/client.h"
#include "crypto/rsa.h"
#include "net/wire_protocol.h"
#include "util/status.h"

namespace spauth {

struct NetClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Bounded-staleness acceptance for degraded serving (core/client.h).
  uint32_t staleness_bound = 0;
  size_t max_frame_payload = kDefaultMaxFramePayload;
  /// Connect()/EnsureConnected() attempts before giving up.
  size_t connect_attempts = 3;
  /// Exponential reconnect backoff (deterministic, clamped).
  uint64_t backoff_base_us = 20'000;
  double backoff_multiplier = 2.0;
  uint64_t max_backoff_us = 500'000;
  /// Socket send/receive timeout; a stalled server surfaces as
  /// kDeadlineExceeded instead of hanging the caller forever.
  uint64_t io_timeout_ms = 10'000;
};

struct NetClientStats {
  uint64_t connects = 0;    // successful handshakes
  uint64_t reconnects = 0;  // successful handshakes after the first
  uint64_t queries_sent = 0;
  uint64_t answers_accepted = 0;
  uint64_t answers_rejected = 0;  // verification-level refusals
  uint64_t server_errors = 0;     // error-status answers from the server
  uint64_t frames_refused = 0;    // malformed/hostile frames (poisoned conn)
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t forest_certs_accepted = 0;  // epoch installs (1 RSA verify each)
  uint64_t forest_answers = 0;         // answers verified via a forest path
};

class NetClient {
 public:
  /// `owner_key` is the trusted data-owner key obtained out of band.
  NetClient(RsaPublicKey owner_key, NetClientOptions options);
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Connects and handshakes, retrying per the options' backoff policy.
  /// Soundness refusals (key mismatch, protocol mismatch, group-count
  /// change) are returned immediately — they will not improve on retry.
  Status Connect();
  void Disconnect();
  bool connected() const { return fd_ >= 0; }

  /// Repoints the client at a different server (disconnecting first). The
  /// verifier watermarks survive — that is the point: the new endpoint
  /// must prove it is at least as fresh as the old one.
  void SetEndpoint(std::string host, uint16_t port);

  /// Valid after the first successful handshake.
  const ServerInfoMsg& server_info() const { return info_; }

  /// Sends one query and verifies the answer. An OK result means the wire
  /// exchange completed and verification RAN — acceptance/rejection is in
  /// value().outcome, mirroring VerifyWireAnswer. Error Statuses are
  /// transport-level: kUnavailable (disconnect), kDeadlineExceeded (IO
  /// timeout), kMalformed (hostile frame; the connection is dropped), or a
  /// server-reported serving error. Reconnects automatically before
  /// sending when the connection is down.
  Result<WireVerification> Query(const spauth::Query& query);

  /// Pipelined batch: all queries are written back-to-back, then answers
  /// are collected (matched by request id), so the server can coalesce
  /// them into one AnswerBatch. The result vector is parallel to
  /// `queries`; a transport failure mid-batch fails the unanswered tail.
  std::vector<Result<WireVerification>> QueryBatch(
      std::span<const spauth::Query> queries);

  /// Fetches the server's serving counters (tests and CI assertions).
  Result<WireStats> FetchServerStats();

  /// The embedded verifier's per-shard watermark (survives reconnects).
  uint32_t ShardVersionWatermark(size_t shard) const {
    return verifier_.ShardVersionWatermark(shard);
  }

  /// True once a handshake carried a forest certificate; sticky for the
  /// session (reconnects must keep presenting forest mode).
  bool forest_mode() const { return forest_mode_; }
  /// Highest fleet epoch accepted so far (0 outside forest mode).
  uint32_t FleetEpochWatermark() const {
    return verifier_.FleetEpochWatermark();
  }

  const NetClientStats& stats() const { return stats_; }

 private:
  Status EnsureConnected();
  Status ConnectOnce();
  Status Handshake();
  Status SendBytes(std::span<const uint8_t> bytes);
  /// Blocks until one complete frame arrives; poisons and disconnects on
  /// any framing defect, disconnects on EOF/timeout.
  Status ReadFrame(WireFrame* out);
  /// Refusal path: drop the connection, bump frames_refused, pass `why`.
  Status Refuse(Status why);
  Result<WireVerification> VerifyAnswer(const spauth::Query& query,
                                        const AnswerMsg& answer);

  RsaPublicKey owner_key_;
  NetClientOptions options_;
  Client verifier_;
  NetClientStats stats_;

  int fd_ = -1;
  FrameDecoder decoder_;
  ServerInfoMsg info_;
  bool handshaken_once_ = false;
  bool forest_mode_ = false;
  uint32_t tracked_groups_ = 0;
  uint64_t next_request_id_ = 1;
};

}  // namespace spauth

#endif  // SPAUTH_NET_CLIENT_H_
